package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"tnpu/internal/exp"
	"tnpu/internal/memprot"
	"tnpu/internal/model"
	"tnpu/internal/npu/memostore"
	"tnpu/internal/plot"
)

// Options configures a Server.
type Options struct {
	// Models restricts the served workload set (nil = all 14).
	Models []string
	// CacheDir is the disk cache directory (required).
	CacheDir string
	// Workers bounds concurrent simulation work: it is both the
	// exp.Runner's cell fan-out and the server's artifact worker pool.
	// 0 = GOMAXPROCS.
	Workers int
	// Queue caps jobs admitted (queued + running) before the server
	// sheds load with 503; identical in-flight requests singleflight in
	// front of the queue and never occupy slots. 0 = 1024.
	Queue int
	// CodeVersion overrides exp.CodeVersion in cache keys (tests use
	// this to prove version bumps strand stale entries).
	CodeVersion string
	// MemoDir is the persistent memo-store directory (layer memos and
	// whole-run cell results; DESIGN.md §6g). Empty = "memo" beside the
	// result cache; "off" disables persistence. Unlike the result cache
	// — whose entries are final artifacts — the memo store holds the
	// regenerable intermediates that make recomputing those artifacts
	// cheap after the result cache is wiped or its code version bumps.
	MemoDir string
}

// Server is the simulation service: stateless HTTP handlers over one
// shared exp.Runner (in-memory singleflight of cells) and one Store
// (cross-process disk cache of artifacts).
type Server struct {
	runner  *exp.Runner
	store   *Store
	bus     *eventBus
	version string
	models  []string
	workers int

	sem      chan struct{}
	queued   atomic.Int64
	maxQueue int64
	rejected atomic.Uint64

	start time.Time
	mux   *http.ServeMux
}

// New builds a Server. The runner's configuration is frozen here — the
// progress sink must be installed before the first simulation.
func New(opts Options) (*Server, error) {
	store, err := NewStore(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	models := opts.Models
	if len(models) == 0 {
		models = model.ShortNames()
	}
	for _, short := range models {
		if _, err := model.ByShort(short); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	version := opts.CodeVersion
	if version == "" {
		version = exp.CodeVersion
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := opts.Queue
	if queue <= 0 {
		queue = 1024
	}
	bus := newEventBus()
	r := exp.NewRunner(models...)
	r.Workers = opts.Workers
	r.Progress = bus
	memoDir := opts.MemoDir
	if memoDir == "" {
		memoDir = filepath.Join(opts.CacheDir, "memo")
	}
	if memoDir != "off" {
		// The memo salt stays exp.CodeVersion even when opts.CodeVersion
		// overrides the artifact keys: the override exercises result-cache
		// stranding, while memo entries are tied to what actually changes
		// their meaning — the simulator revision.
		if err := r.SetMemoDir(memoDir); err != nil {
			return nil, err
		}
	}

	s := &Server{
		runner:   r,
		store:    store,
		bus:      bus,
		version:  version,
		models:   models,
		workers:  workers,
		sem:      make(chan struct{}, workers),
		maxQueue: int64(queue),
		start:    time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /api/models", s.handleModels)
	mux.HandleFunc("GET /api/cell", s.handleCell)
	mux.HandleFunc("GET /api/mixed", s.handleMixed)
	mux.HandleFunc("GET /api/figure/{id}", s.handleFigure)
	mux.HandleFunc("GET /api/sweep/{kind}", s.handleSweep)
	mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux = mux
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the disk cache (tests and /stats).
func (s *Server) Store() *Store { return s.store }

// Runner exposes the shared experiment harness (memo wiring and stats).
func (s *Server) Runner() *exp.Runner { return s.runner }

// errBusy is returned when the job queue is full; mapped to 503.
var errBusy = fmt.Errorf("serve: job queue full, retry later")

// acquire admits one job: it counts toward the queue bound immediately
// and blocks until a worker slot frees. Identical concurrent requests
// never reach here — the store's singleflight collapses them first.
func (s *Server) acquire() error {
	if s.queued.Add(1) > s.maxQueue {
		s.queued.Add(-1)
		s.rejected.Add(1)
		return errBusy
	}
	s.sem <- struct{}{}
	return nil
}

func (s *Server) release() {
	<-s.sem
	s.queued.Add(-1)
}

// cached looks key up through the disk cache, computing (under the job
// queue and worker pool) on a miss.
func (s *Server) cached(key string, compute func() ([]byte, error)) ([]byte, Source, error) {
	return s.store.Get(key, func() ([]byte, error) {
		if err := s.acquire(); err != nil {
			return nil, err
		}
		defer s.release()
		return compute()
	})
}

// --- request parsing helpers -------------------------------------------

func (s *Server) hasModel(short string) bool {
	for _, m := range s.models {
		if m == short {
			return true
		}
	}
	return false
}

func parseClass(v string) (exp.Class, error) {
	switch v {
	case "", "small":
		return exp.Small, nil
	case "large":
		return exp.Large, nil
	}
	return 0, fmt.Errorf("unknown class %q (small|large)", v)
}

func parseScheme(v string) (memprot.Scheme, error) {
	if v == "" {
		return memprot.TreeLess, nil
	}
	for _, sch := range memprot.AllSchemes() {
		if sch.String() == v {
			return sch, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q (unsecure|baseline|tnpu|encrypt-only)", v)
}

// maxNPUCount bounds /api/cell's count parameter: the paper evaluates
// 1-3 NPUs; 4 leaves one step of headroom without letting a request
// order an unboundedly expensive simulation.
const maxNPUCount = 4

func parseCount(v string) (int, error) {
	if v == "" {
		return 1, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 || n > maxNPUCount {
		return 0, fmt.Errorf("count must be 1..%d, got %q", maxNPUCount, v)
	}
	return n, nil
}

// --- response helpers --------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data) //tnpu:errok (client went away; nothing to do)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeCached emits a cache-layer result: the entry bytes plus an
// X-Tnpu-Cache header naming where they came from (compute|disk|flight),
// which the load tests use to observe convergence.
func writeCached(w http.ResponseWriter, contentType string, data []byte, src Source) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("X-Tnpu-Cache", string(src))
	w.Write(data) //tnpu:errok (client went away; nothing to do)
}

func (s *Server) failCached(w http.ResponseWriter, err error) {
	if err == errBusy {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

// --- endpoints ---------------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, `tnpu-serve — TNPU simulation as a service (code version %s)

GET /api/cell?model=df&class=small&scheme=tnpu&count=1   one simulation cell (JSON)
GET /api/mixed?models=df,res&class=small&scheme=tnpu     mixed-tenancy run with per-NPU attribution (JSON)
GET /api/figure/{fig4|fig5|fig14|fig15|fig16|fig17}      paper figure (JSON; &format=svg&class=small for a chart)
GET /api/sweep/{bandwidth|spm|latency}?model=df          sensitivity sweep (JSON)
GET /api/sweep/npucount?model=df                         1-3 NPU scalability curve (JSON; &format=svg&class=small)
GET /api/models                                          served workloads
GET /stats                                               cache/memo/queue counters
GET /events                                              SSE stream of completed-cell progress
GET /healthz                                             liveness
`, s.version)
}

// modelDoc is one workload's metadata.
type modelDoc struct {
	Short       string  `json:"short"`
	Name        string  `json:"name"`
	FootprintMB float64 `json:"footprint_mb"`
	Layers      int     `json:"layers"`
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	docs := make([]modelDoc, 0, len(s.models))
	for _, short := range s.models {
		m, err := model.ByShort(short)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		docs = append(docs, modelDoc{
			Short:       m.Short,
			Name:        m.Name,
			FootprintMB: float64(m.Footprint()) / (1 << 20),
			Layers:      len(m.Layers),
		})
	}
	writeJSON(w, http.StatusOK, docs)
}

// CellResult is the JSON payload of /api/cell: one (model, class, scheme,
// count) simulation plus its normalization against the same-count
// unsecure run.
type CellResult struct {
	Model  string `json:"model"`
	Class  string `json:"class"`
	Scheme string `json:"scheme"`
	Count  int    `json:"count"`

	Cycles       uint64  `json:"cycles"`
	Milliseconds float64 `json:"milliseconds"`
	// Normalized is cycles / unsecure cycles at the same NPU count (the
	// y-axis of Figs. 4/14/16); 1.0 for the unsecure scheme itself.
	Normalized float64 `json:"normalized"`

	TrafficBytes    uint64  `json:"traffic_bytes"`
	MetadataBytes   uint64  `json:"metadata_bytes"`
	CounterMissRate float64 `json:"counter_miss_rate"`
	MACMissRate     float64 `json:"mac_miss_rate"`
}

func (s *Server) handleCell(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	short := q.Get("model")
	if !s.hasModel(short) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown or unserved model %q (see /api/models)", short))
		return
	}
	class, err := parseClass(q.Get("class"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scheme, err := parseScheme(q.Get("scheme"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	count, err := parseCount(q.Get("count"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	key := exp.CellKey{Model: short, Class: class, Scheme: scheme, Count: count}
	data, src, err := s.cached(key.Digest(s.version), func() ([]byte, error) {
		res, err := s.runner.Run(short, class, scheme, count)
		if err != nil {
			return nil, err
		}
		base, err := s.runner.Run(short, class, memprot.Unsecure, count)
		if err != nil {
			return nil, err
		}
		if base.Cycles == 0 {
			return nil, fmt.Errorf("serve: unsecure reference for %s/%s took zero cycles", short, class)
		}
		cfg := class.Config()
		return json.Marshal(CellResult{
			Model:  short,
			Class:  class.String(),
			Scheme: scheme.String(),
			Count:  count,

			Cycles:       res.Cycles,
			Milliseconds: 1e3 * float64(res.Cycles) / float64(cfg.Mem.FreqHz),
			Normalized:   float64(res.Cycles) / float64(base.Cycles),

			TrafficBytes:    res.Traffic.Total(),
			MetadataBytes:   res.Traffic.Metadata(),
			CounterMissRate: res.Counter.MissRate(),
			MACMissRate:     res.MAC.MissRate(),
		})
	})
	if err != nil {
		s.failCached(w, err)
		return
	}
	writeCached(w, "application/json", data, src)
}

// figureDoc is the JSON shape of /api/figure.
type figureDoc struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Series []seriesDoc `json:"series"`
}

type seriesDoc struct {
	Class  string    `json:"class"`
	Label  string    `json:"label"`
	Models []string  `json:"models"`
	Values []float64 `json:"values"`
	Mean   float64   `json:"mean"`
}

// figureSpec maps a figure id to its generator and chart dressing.
type figureSpec struct {
	gen     func() (exp.Figure, error)
	refLine float64
	yLabel  string
}

func (s *Server) figureSpec(id string) (figureSpec, bool) {
	switch id {
	case "fig4":
		return figureSpec{s.runner.Figure4, 1, "normalized execution time"}, true
	case "fig5":
		return figureSpec{s.runner.Figure5, 0, "counter cache miss rate"}, true
	case "fig14":
		return figureSpec{s.runner.Figure14, 1, "normalized execution time"}, true
	case "fig15":
		return figureSpec{s.runner.Figure15, 1, "normalized memory traffic"}, true
	case "fig16":
		return figureSpec{s.runner.Figure16, 1, "normalized execution time"}, true
	case "fig17":
		return figureSpec{s.runner.Figure17, 1, "normalized end-to-end latency"}, true
	}
	return figureSpec{}, false
}

// figureKey content-addresses one figure: the figure definition (code
// version), the workload set, and both Table II hardware configurations
// it simulates.
func (s *Server) figureKey(id string) string {
	return exp.DigestParams(s.version, "figure", map[string]string{
		"id":     id,
		"models": strings.Join(s.models, ","),
		"small":  exp.ConfigDigest(exp.Small.Config()),
		"large":  exp.ConfigDigest(exp.Large.Config()),
	})
}

func (s *Server) handleFigure(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	spec, ok := s.figureSpec(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown figure %q (fig4|fig5|fig14|fig15|fig16|fig17)", id))
		return
	}
	format := req.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "svg" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (json|svg)", format))
		return
	}

	data, src, err := s.cached(s.figureKey(id), func() ([]byte, error) {
		fig, err := spec.gen()
		if err != nil {
			return nil, err
		}
		doc := figureDoc{ID: fig.ID, Title: fig.Title}
		for _, series := range fig.Series {
			doc.Series = append(doc.Series, seriesDoc{
				Class:  series.Class.String(),
				Label:  series.Label,
				Models: series.Models,
				Values: series.Values,
				Mean:   series.Mean(),
			})
		}
		return json.Marshal(doc)
	})
	if err != nil {
		s.failCached(w, err)
		return
	}
	if format == "json" {
		writeCached(w, "application/json", data, src)
		return
	}

	// SVG is a cheap deterministic rendering of the cached figure data,
	// so only the JSON is content-addressed.
	s.writeFigureSVG(w, req, data, src, spec.refLine, spec.yLabel)
}

// writeFigureSVG renders the requested class's chart of a cached
// figureDoc through plot.ClassCharts — shared by /api/figure and the
// figure-shaped /api/sweep/npucount.
func (s *Server) writeFigureSVG(w http.ResponseWriter, req *http.Request, data []byte, src Source, refLine float64, yLabel string) {
	class, err := parseClass(req.URL.Query().Get("class"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var doc figureDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("corrupt figure entry: %w", err))
		return
	}
	var classSeries []plot.ClassSeries
	categories := []string(nil)
	for _, series := range doc.Series {
		classSeries = append(classSeries, plot.ClassSeries{Class: series.Class, Label: series.Label, Values: series.Values})
		if categories == nil {
			categories = series.Models
		}
	}
	for _, cc := range plot.ClassCharts(doc.ID, doc.Title, categories, classSeries, refLine, yLabel) {
		if cc.Class != class.String() {
			continue
		}
		svg, err := cc.Chart.SVG()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeCached(w, "image/svg+xml", []byte(svg), src)
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("figure %s has no %s-class series", doc.ID, class))
}

// sweepDoc is the JSON shape of /api/sweep.
type sweepDoc struct {
	Name   string          `json:"name"`
	Model  string          `json:"model"`
	Points []sweepPointDoc `json:"points"`
}

type sweepPointDoc struct {
	Label    string  `json:"label"`
	Baseline float64 `json:"baseline"`
	TNPU     float64 `json:"tnpu"`
}

func (s *Server) handleSweep(w http.ResponseWriter, req *http.Request) {
	kind := req.PathValue("kind")
	var gen func(string) (exp.Sweep, error)
	switch kind {
	case "bandwidth":
		gen = s.runner.BandwidthSweep
	case "spm":
		gen = s.runner.SPMSweep
	case "latency":
		gen = s.runner.LatencySweep
	case "npucount":
		s.handleNPUCountSweep(w, req)
		return
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q (bandwidth|spm|latency|npucount)", kind))
		return
	}
	short := req.URL.Query().Get("model")
	if !s.hasModel(short) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown or unserved model %q (see /api/models)", short))
		return
	}

	// The sweeps scale one axis off the Small configuration, so its
	// digest (plus the sweep definition under the code version) is the
	// full input identity.
	key := exp.DigestParams(s.version, "sweep", map[string]string{
		"kind":  kind,
		"model": short,
		"base":  exp.ConfigDigest(exp.Small.Config()),
	})
	data, src, err := s.cached(key, func() ([]byte, error) {
		sw, err := gen(short)
		if err != nil {
			return nil, err
		}
		doc := sweepDoc{Name: sw.Name, Model: sw.Model}
		for _, p := range sw.Points {
			doc.Points = append(doc.Points, sweepPointDoc{Label: p.Label, Baseline: p.Baseline, TNPU: p.TNPU})
		}
		return json.Marshal(doc)
	})
	if err != nil {
		s.failCached(w, err)
		return
	}
	writeCached(w, "application/json", data, src)
}

// handleNPUCountSweep serves the scalability curve: normalized execution
// time at 1–3 NPUs per scheme and class, now cheap enough to compute on
// demand (the horizon-bounded arbitration plus the joint-run cache). The
// artifact is figure-shaped — class-tagged series over NPU-count
// categories — so it shares the figure endpoints' JSON/SVG rendering.
// Both Table II configurations go into the cache key because the sweep
// simulates both classes (unlike the one-axis sweeps, which scale off
// Small alone). Count itself needs no key component: it is the category
// axis inside the artifact, and the underlying cells already carry it
// (exp.CellKey.Digest hashes Count; pinned by TestCellKeyDigest).
func (s *Server) handleNPUCountSweep(w http.ResponseWriter, req *http.Request) {
	short := req.URL.Query().Get("model")
	if !s.hasModel(short) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown or unserved model %q (see /api/models)", short))
		return
	}
	format := req.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	if format != "json" && format != "svg" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (json|svg)", format))
		return
	}

	key := exp.DigestParams(s.version, "sweep", map[string]string{
		"kind":  "npucount",
		"model": short,
		"small": exp.ConfigDigest(exp.Small.Config()),
		"large": exp.ConfigDigest(exp.Large.Config()),
	})
	data, src, err := s.cached(key, func() ([]byte, error) {
		fig, err := s.runner.NPUCountSweep(short)
		if err != nil {
			return nil, err
		}
		doc := figureDoc{ID: fig.ID, Title: fig.Title}
		for _, series := range fig.Series {
			doc.Series = append(doc.Series, seriesDoc{
				Class:  series.Class.String(),
				Label:  series.Label,
				Models: series.Models,
				Values: series.Values,
				Mean:   series.Mean(),
			})
		}
		return json.Marshal(doc)
	})
	if err != nil {
		s.failCached(w, err)
		return
	}
	if format == "json" {
		writeCached(w, "application/json", data, src)
		return
	}
	s.writeFigureSVG(w, req, data, src, 1, "normalized execution time")
}

// MixedResult is the JSON payload of /api/mixed: one mixed-tenancy run
// with per-NPU attribution — each tenant's completion time and served
// traffic on the shared bus and metadata caches.
type MixedResult struct {
	Models []string `json:"models"`
	Class  string   `json:"class"`
	Scheme string   `json:"scheme"`

	// Cycles is the completion time of the slowest tenant.
	Cycles       uint64  `json:"cycles"`
	Milliseconds float64 `json:"milliseconds"`

	NPUs []MixedNPU `json:"npus"`

	TrafficBytes  uint64 `json:"traffic_bytes"`
	MetadataBytes uint64 `json:"metadata_bytes"`
}

// MixedNPU is one tenant's share of a mixed run.
type MixedNPU struct {
	Model      string `json:"model"`
	Cycles     uint64 `json:"cycles"`
	Blocks     uint64 `json:"blocks"`
	ReadBytes  uint64 `json:"read_bytes"`
	WriteBytes uint64 `json:"write_bytes"`
}

// handleMixed serves the mixed-tenancy cell: different workloads on each
// NPU of one SoC, the co-tenant QoS view the ROADMAP contention matrix
// needs. The models parameter is an ordered comma-separated list; order
// is part of the identity (it fixes each tenant's context region).
func (s *Server) handleMixed(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	shorts := strings.Split(q.Get("models"), ",")
	if len(shorts) < 1 || len(shorts) > maxNPUCount || shorts[0] == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("models must list 1..%d workloads, got %q", maxNPUCount, q.Get("models")))
		return
	}
	for _, short := range shorts {
		if !s.hasModel(short) {
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown or unserved model %q (see /api/models)", short))
			return
		}
	}
	class, err := parseClass(q.Get("class"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scheme, err := parseScheme(q.Get("scheme"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	key := exp.DigestParams(s.version, "mixed", map[string]string{
		"models": strings.Join(shorts, ","),
		"config": exp.ConfigDigest(class.Config()),
		"scheme": scheme.String(),
	})
	data, src, err := s.cached(key, func() ([]byte, error) {
		res, err := s.runner.RunMixed(shorts, class, scheme)
		if err != nil {
			return nil, err
		}
		cfg := class.Config()
		doc := MixedResult{
			Models: shorts,
			Class:  class.String(),
			Scheme: scheme.String(),

			Cycles:       res.Cycles,
			Milliseconds: 1e3 * float64(res.Cycles) / float64(cfg.Mem.FreqHz),

			TrafficBytes:  res.Traffic.Total(),
			MetadataBytes: res.Traffic.Metadata(),
		}
		for i, n := range res.NPUs {
			doc.NPUs = append(doc.NPUs, MixedNPU{
				Model:      shorts[i],
				Cycles:     n.Cycles,
				Blocks:     n.Blocks,
				ReadBytes:  n.ReadBytes,
				WriteBytes: n.WriteBytes,
			})
		}
		return json.Marshal(doc)
	})
	if err != nil {
		s.failCached(w, err)
		return
	}
	writeCached(w, "application/json", data, src)
}

// StatsDoc is the /stats payload: every counter the service keeps —
// disk-cache outcomes, the harness's in-memory cell cache, the shared
// layer memo, queue pressure, SSE delivery, and process vitals.
type StatsDoc struct {
	CodeVersion   string   `json:"code_version"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	Models        []string `json:"models"`
	Workers       int      `json:"workers"`

	Store StoreStats `json:"store"`

	Queue struct {
		Depth    int64  `json:"depth"`
		Capacity int64  `json:"capacity"`
		Rejected uint64 `json:"rejected"`
	} `json:"queue"`

	// Memo is the shared layer-replay cache (exp.Runner.LayerMemoStats):
	// in-memory replays, live recordings, record-once flight waits,
	// replays loaded off the persistent store, and budget evictions.
	Memo struct {
		Hits       uint64 `json:"hits"`
		Misses     uint64 `json:"misses"`
		FlightHits uint64 `json:"flight_hits"`
		DiskHits   uint64 `json:"disk_hits"`
		Records    uint64 `json:"records"`
		Evictions  uint64 `json:"evictions"`
		Bytes      int    `json:"bytes"`
	} `json:"memo"`

	// MemoStore is the persistent memo store backing both the layer memo
	// and the whole-run cell memos (empty dir = persistence disabled).
	MemoStore struct {
		Dir string `json:"dir"`
		memostore.Stats
	} `json:"memo_store"`

	// MultiCache is the shared multi-NPU joint-run cache
	// (exp.Runner.MultiCacheStats).
	MultiCache struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
	} `json:"multi_cache"`

	// Harness is the runner's in-memory cell singleflight cache.
	Harness struct {
		CellsComputed  int    `json:"cells_computed"`
		CellCacheHits  uint64 `json:"cell_cache_hits"`
		CompileWallMS  int64  `json:"compile_wall_ms"`
		SimulateWallMS int64  `json:"simulate_wall_ms"`
	} `json:"harness"`

	Events struct {
		Published   uint64 `json:"published"`
		Dropped     uint64 `json:"dropped"`
		Subscribers int    `json:"subscribers"`
	} `json:"events"`

	Runtime struct {
		Goroutines     int    `json:"goroutines"`
		HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	} `json:"runtime"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var doc StatsDoc
	doc.CodeVersion = s.version
	doc.UptimeSeconds = time.Since(s.start).Seconds()
	doc.Models = append([]string(nil), s.models...)
	sort.Strings(doc.Models)
	doc.Workers = s.workers

	doc.Store = s.store.Stats()

	doc.Queue.Depth = s.queued.Load()
	doc.Queue.Capacity = s.maxQueue
	doc.Queue.Rejected = s.rejected.Load()

	lm := s.runner.LayerMemoStats()
	doc.Memo.Hits = lm.Hits
	doc.Memo.Misses = lm.Misses
	doc.Memo.FlightHits = lm.FlightHits
	doc.Memo.DiskHits = lm.DiskHits
	doc.Memo.Records = lm.Records
	doc.Memo.Evictions = lm.Evictions
	doc.Memo.Bytes = lm.Bytes
	doc.MemoStore.Dir = s.runner.MemoDir()
	doc.MemoStore.Stats = s.runner.CellStoreStats()
	doc.MultiCache.Hits, doc.MultiCache.Misses = s.runner.MultiCacheStats()

	log := s.runner.Log()
	doc.Harness.CellsComputed = log.CellsDone()
	doc.Harness.CellCacheHits = log.CacheHits()
	doc.Harness.CompileWallMS = log.TotalByKind("compile").Milliseconds()
	doc.Harness.SimulateWallMS = log.TotalByKind("simulate").Milliseconds()

	doc.Events.Published = s.bus.published.Load()
	doc.Events.Dropped = s.bus.dropped.Load()
	doc.Events.Subscribers = s.bus.subscribers()

	doc.Runtime.Goroutines = runtime.NumGoroutine()
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	doc.Runtime.HeapAllocBytes = mem.HeapAlloc

	writeJSON(w, http.StatusOK, doc)
}

// handleEvents streams the runner's completed-cell progress lines as
// server-sent events. Events may be dropped for a slow consumer (the
// stream is observability, not a transactional log); the terminating
// "dropped" count is visible on /stats.
func (s *Server) handleEvents(w http.ResponseWriter, req *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	ch := s.bus.subscribe()
	defer s.bus.unsubscribe(ch)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	fmt.Fprintf(w, "event: hello\ndata: tnpu-serve %s\n\n", s.version)
	fl.Flush()

	for {
		select {
		case <-req.Context().Done():
			return
		case line := <-ch:
			fmt.Fprintf(w, "event: cell\ndata: %s\n\n", line)
			fl.Flush()
		}
	}
}
