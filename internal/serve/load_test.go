package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// loadPaths is the request mix the load tests hammer: every (scheme,
// class, count) cell of a sweep grid plus figure and sensitivity-sweep
// artifacts — 21 distinct content addresses, requested thousands of
// times.
func loadPaths(model string) []string {
	var paths []string
	for _, scheme := range []string{"unsecure", "baseline", "tnpu", "encrypt-only"} {
		for _, class := range []string{"small", "large"} {
			for _, count := range []string{"1", "2"} {
				paths = append(paths, fmt.Sprintf("/api/cell?model=%s&class=%s&scheme=%s&count=%s", model, class, scheme, count))
			}
		}
	}
	paths = append(paths,
		"/api/figure/fig4",
		"/api/figure/fig14",
		"/api/figure/fig15",
		"/api/sweep/bandwidth?model="+model,
		"/api/sweep/latency?model="+model,
	)
	return paths
}

// loadClient bounds sockets, not concurrency: thousands of in-flight
// requests share a capped connection pool so the test exercises the
// server's queueing, not the kernel's fd table.
func loadClient() *http.Client {
	return &http.Client{
		Timeout: 5 * time.Minute,
		Transport: &http.Transport{
			MaxConnsPerHost:     128,
			MaxIdleConnsPerHost: 128,
		},
	}
}

// floodStats aggregates one flood's outcomes.
type floodStats struct {
	ok        atomic.Uint64
	badStatus atomic.Uint64
	transport atomic.Uint64
	status5xx atomic.Uint64

	mu     sync.Mutex
	sample string // first failure, for the report
}

func (f *floodStats) note(sample string) {
	f.mu.Lock()
	if f.sample == "" {
		f.sample = sample
	}
	f.mu.Unlock()
}

// flood fires n concurrent GETs round-robin over paths and waits for all
// of them. Bodies are fully drained so connections are reused.
func flood(client *http.Client, base string, paths []string, n int) *floodStats {
	stats := &floodStats{}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			resp, err := client.Get(base + path)
			if err != nil {
				stats.transport.Add(1)
				stats.note(fmt.Sprintf("%s: %v", path, err))
				return
			}
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close() //tnpu:errok
			if rerr != nil {
				stats.transport.Add(1)
				stats.note(fmt.Sprintf("%s: read: %v", path, rerr))
				return
			}
			if resp.StatusCode != http.StatusOK {
				stats.badStatus.Add(1)
				if resp.StatusCode >= 500 {
					stats.status5xx.Add(1)
				}
				stats.note(fmt.Sprintf("%s: status %d: %.200s", path, resp.StatusCode, body))
				return
			}
			if len(body) == 0 {
				stats.badStatus.Add(1)
				stats.note(path + ": empty 200 body")
				return
			}
			stats.ok.Add(1)
		}(paths[i%len(paths)])
	}
	wg.Wait()
	return stats
}

func (f *floodStats) assertClean(t *testing.T, n int) {
	t.Helper()
	if got := f.ok.Load(); got != uint64(n) {
		t.Errorf("%d/%d requests ok (%d bad status, %d of them 5xx, %d transport errors); first failure: %s",
			got, n, f.badStatus.Load(), f.status5xx.Load(), f.transport.Load(), f.sample)
	}
}

// TestLoadConcurrentSweeps is the acceptance load test: thousands of
// concurrent requests over a 21-artifact sweep grid against a cold
// service, with the singleflight + disk-cache contract verified through
// the counters, memory bounded, and a restarted (warm-cache) service
// measurably faster than the cold one at the same request volume.
func TestLoadConcurrentSweeps(t *testing.T) {
	n := 2000
	if testing.Short() {
		n = 250
	}
	paths := loadPaths("df")
	client := loadClient()
	dir := t.TempDir()

	// --- cold service: every artifact must be computed exactly once ----
	cold, err := New(Options{Models: []string{"df"}, CacheDir: dir, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	coldTS := httptest.NewServer(cold.Handler())
	defer coldTS.Close()

	coldStart := time.Now()
	flood(client, coldTS.URL, paths, n).assertClean(t, n)
	coldDur := time.Since(coldStart)

	st := cold.Store().Stats()
	if st.Computes != uint64(len(paths)) {
		t.Errorf("cold computes = %d, want exactly %d (one per distinct artifact)", st.Computes, len(paths))
	}
	if st.Stores != uint64(len(paths)) {
		t.Errorf("cold stores = %d, want %d", st.Stores, len(paths))
	}
	if got := st.Hits() + st.Computes; got != uint64(n) {
		t.Errorf("cold lookups don't add up: hits %d + computes %d != %d requests", st.Hits(), st.Computes, n)
	}
	if st.Corrupt != 0 || st.Errors != 0 {
		t.Errorf("cold corruption/errors: %+v", st)
	}
	// The runner's own singleflight must have collapsed the cell grid:
	// figures and cells share unsecure denominators, so in-memory cache
	// hits are structural, and no simulation ran twice.
	log := cold.runner.Log()
	if log.CacheHits() == 0 {
		t.Error("harness cell cache saw no hits during the figure/cell grid")
	}

	// --- bounded memory ------------------------------------------------
	runtime.GC()
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	const heapBound = 1 << 30
	if mem.HeapAlloc > heapBound {
		t.Errorf("heap after %d requests = %d MiB, bound %d MiB", n, mem.HeapAlloc>>20, heapBound>>20)
	}
	t.Logf("cold: %d requests in %v, %d computes, heap %d MiB", n, coldDur, st.Computes, mem.HeapAlloc>>20)

	// --- warm restart: zero recomputation, faster regeneration ---------
	warm, err := New(Options{Models: []string{"df"}, CacheDir: dir, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	warmTS := httptest.NewServer(warm.Handler())
	defer warmTS.Close()

	warmStart := time.Now()
	flood(client, warmTS.URL, paths, n).assertClean(t, n)
	warmDur := time.Since(warmStart)

	wst := warm.Store().Stats()
	if wst.Computes != 0 {
		t.Errorf("warm service recomputed %d artifacts; disk cache did not survive the restart", wst.Computes)
	}
	if wst.DiskHits+wst.FlightHits != uint64(n) {
		t.Errorf("warm hits = %d, want %d", wst.DiskHits+wst.FlightHits, n)
	}
	if hits, misses := warm.runner.MemoStats(); hits+misses != 0 {
		t.Errorf("warm service simulated layers (%d hits, %d misses); results must come from disk", hits, misses)
	}
	t.Logf("warm: %d requests in %v (cold %v)", n, warmDur, coldDur)
	// Warm regeneration does strictly less work (disk reads instead of
	// simulations); only compare wall clocks when the cold run is slow
	// enough for the difference to dominate scheduling noise.
	if coldDur > 100*time.Millisecond && warmDur >= coldDur {
		t.Errorf("warm regeneration (%v) not faster than cold (%v)", warmDur, coldDur)
	}
}

// TestLoadResponsesByteIdentical pins response determinism across the
// cache layers: the same artifact fetched cold (computed), hot (disk),
// and after a restart must be byte-identical.
func TestLoadResponsesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	paths := loadPaths("df")

	fetchAll := func(s *Server) map[string]string {
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		out := make(map[string]string, len(paths))
		for _, path := range paths {
			resp, body := get(t, ts.URL+path)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: %d", path, resp.StatusCode)
			}
			out[path] = string(body)
		}
		return out
	}

	first, err := New(Options{Models: []string{"df"}, CacheDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	coldBodies := fetchAll(first)
	hotBodies := fetchAll(first)
	second, err := New(Options{Models: []string{"df"}, CacheDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	restartBodies := fetchAll(second)

	for _, path := range paths {
		if coldBodies[path] != hotBodies[path] {
			t.Errorf("%s: disk-cached body differs from computed body", path)
		}
		if coldBodies[path] != restartBodies[path] {
			t.Errorf("%s: post-restart body differs from computed body", path)
		}
	}
	if got := second.Store().Stats().Computes; got != 0 {
		t.Errorf("restarted service computed %d artifacts", got)
	}
}

// TestLoadAgainstExternalServer drives a separately booted tnpu-serve
// process (scripts/serve_smoke.sh): TNPU_SERVE_URL points at it,
// TNPU_SERVE_LOAD scales the request count, and TNPU_SERVE_EXPECT_WARM=1
// asserts the process serves purely from its disk cache (the smoke
// script's restart leg). Asserts zero 5xx and cross-request cache hits.
func TestLoadAgainstExternalServer(t *testing.T) {
	base := os.Getenv("TNPU_SERVE_URL")
	if base == "" {
		t.Skip("TNPU_SERVE_URL not set; this target is driven by scripts/serve_smoke.sh")
	}
	n := 300
	if v := os.Getenv("TNPU_SERVE_LOAD"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed <= 0 {
			t.Fatalf("bad TNPU_SERVE_LOAD %q", v)
		}
		n = parsed
	}
	model := os.Getenv("TNPU_SERVE_MODEL")
	if model == "" {
		model = "df"
	}

	client := loadClient()
	stats := flood(client, base, loadPaths(model), n)
	stats.assertClean(t, n)
	if got := stats.status5xx.Load(); got != 0 {
		t.Errorf("%d requests hit a 5xx", got)
	}

	var doc StatsDoc
	getJSON(t, base+"/stats", &doc)
	if doc.Store.Hits() == 0 {
		t.Error("no cross-request cache hits on the external server")
	}
	if doc.Store.Corrupt != 0 {
		t.Errorf("external server rejected %d corrupt entries", doc.Store.Corrupt)
	}
	if os.Getenv("TNPU_SERVE_EXPECT_WARM") == "1" && doc.Store.Computes != 0 {
		t.Errorf("warm external server computed %d artifacts; expected pure disk serving", doc.Store.Computes)
	}
	t.Logf("external %s: %d requests, store %+v", base, n, doc.Store)
}
