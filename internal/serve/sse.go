package serve

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// eventBus fans the runner's RunLog progress lines out to SSE
// subscribers. It implements io.Writer so it can be installed as the
// exp.Runner's Progress sink: each completed-cell line becomes one event.
//
// Delivery is best-effort by design: a slow subscriber must never stall a
// simulation, so a full subscriber buffer drops the event (counted) rather
// than blocking the producer.
type eventBus struct {
	mu   sync.Mutex
	subs map[chan string]struct{}
	part []byte // carry for writes that end mid-line

	published atomic.Uint64
	dropped   atomic.Uint64
}

// subscriberBuffer is per-subscriber: deep enough to absorb bursts of
// cell completions, small enough to bound memory per connection.
const subscriberBuffer = 256

func newEventBus() *eventBus {
	return &eventBus{subs: make(map[chan string]struct{})}
}

// Write splits p into lines and publishes each completed line as one
// event. Safe for concurrent use (the RunLog emits progress lines from
// every worker goroutine).
func (b *eventBus) Write(p []byte) (int, error) {
	b.mu.Lock()
	b.part = append(b.part, p...)
	for {
		nl := bytes.IndexByte(b.part, '\n')
		if nl < 0 {
			break
		}
		line := string(b.part[:nl])
		b.part = b.part[nl+1:]
		b.publishLocked(line)
	}
	b.mu.Unlock()
	return len(p), nil
}

// publishLocked delivers one line to every subscriber, dropping on full
// buffers. Caller holds b.mu.
func (b *eventBus) publishLocked(line string) {
	b.published.Add(1)
	// Each subscriber gets the same line on its own channel; delivery
	// order across independent subscribers is unobservable.
	for ch := range b.subs { //tnpu:orderfree
		select {
		case ch <- line:
		default:
			b.dropped.Add(1)
		}
	}
}

// subscribe registers a new listener; the caller must unsubscribe it.
func (b *eventBus) subscribe() chan string {
	ch := make(chan string, subscriberBuffer)
	b.mu.Lock()
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch
}

func (b *eventBus) unsubscribe(ch chan string) {
	b.mu.Lock()
	delete(b.subs, ch)
	b.mu.Unlock()
}

// subscribers reports the current listener count.
func (b *eventBus) subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}
