package serve

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"

	"tnpu/internal/exp"
	"tnpu/internal/memprot"
)

// testKey builds a valid content address for test payloads.
func testKey(parts ...string) string { return exp.Digest("test-version", parts...) }

func mustGet(t *testing.T, s *Store, key string, compute func() ([]byte, error)) ([]byte, Source) {
	t.Helper()
	data, src, err := s.Get(key, compute)
	if err != nil {
		t.Fatalf("Get(%.12s): %v", key, err)
	}
	return data, src
}

func TestStoreComputeThenDiskHit(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("cell", "a")
	payload := []byte(`{"cycles":12345}`)
	computes := 0
	compute := func() ([]byte, error) { computes++; return payload, nil }

	data, src := mustGet(t, s, key, compute)
	if src != SourceCompute || !bytes.Equal(data, payload) || computes != 1 {
		t.Fatalf("first lookup: src=%s computes=%d data=%q", src, computes, data)
	}
	data, src = mustGet(t, s, key, compute)
	if src != SourceDisk || !bytes.Equal(data, payload) || computes != 1 {
		t.Fatalf("second lookup: src=%s computes=%d", src, computes)
	}

	// A fresh store over the same directory — a process restart — serves
	// from disk without recomputing.
	s2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, src = mustGet(t, s2, key, func() ([]byte, error) {
		t.Error("restarted process recomputed a cached entry")
		return payload, nil
	})
	if src != SourceDisk || !bytes.Equal(data, payload) {
		t.Fatalf("post-restart lookup: src=%s", src)
	}

	st := s.Stats()
	if st.Lookups != 2 || st.Computes != 1 || st.DiskHits != 1 || st.Stores != 1 || st.Corrupt != 0 || st.Errors != 0 {
		t.Errorf("stats: %+v", st)
	}
}

// TestStoreCorruptEntryRecomputed mangles a persisted entry every way the
// framing defends against and checks each one is rejected, recomputed,
// and repaired in place.
func TestStoreCorruptEntryRecomputed(t *testing.T) {
	payload := []byte(`{"cycles":999,"traffic":123456}`)
	corruptions := []struct {
		name string
		mod  func([]byte) []byte
	}{
		{"truncated-body", func(raw []byte) []byte { return raw[:len(raw)-3] }},
		{"flipped-body-byte", func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[len(out)-1] ^= 0x40
			return out
		}},
		{"bad-magic", func(raw []byte) []byte {
			out := append([]byte(nil), raw...)
			out[0] = 'X'
			return out
		}},
		{"empty-file", func([]byte) []byte { return nil }},
		{"header-only", func(raw []byte) []byte { return raw[:bytes.IndexByte(raw, '\n')+1] }},
		{"appended-garbage", func(raw []byte) []byte { return append(append([]byte(nil), raw...), "tail"...) }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := testKey("corrupt", tc.name)
			mustGet(t, s, key, func() ([]byte, error) { return payload, nil })

			raw, err := os.ReadFile(s.path(key))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.path(key), tc.mod(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			recomputed := false
			data, src := mustGet(t, s, key, func() ([]byte, error) { recomputed = true; return payload, nil })
			if !recomputed || src != SourceCompute {
				t.Fatalf("corrupt entry served: src=%s recomputed=%v", src, recomputed)
			}
			if !bytes.Equal(data, payload) {
				t.Fatalf("recomputed data mismatch: %q", data)
			}
			if got := s.Stats().Corrupt; got != 1 {
				t.Errorf("corrupt counter = %d, want 1", got)
			}
			// The rewritten entry must be whole again.
			_, src = mustGet(t, s, key, func() ([]byte, error) {
				t.Error("repaired entry recomputed")
				return payload, nil
			})
			if src != SourceDisk {
				t.Errorf("repaired entry src=%s, want disk", src)
			}
		})
	}
}

// TestStoreConcurrentWritersRace runs many writers of one key through two
// Store instances over the same directory — the cross-process race the
// temp-file + atomic-rename protocol must survive. Whatever interleaving
// happens, every lookup must return the payload and the surviving entry
// must be valid.
func TestStoreConcurrentWritersRace(t *testing.T) {
	dir := t.TempDir()
	a, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("race")
	payload := []byte(`{"deterministic":"result"}`)

	const perStore = 32
	var wg sync.WaitGroup
	errs := make(chan error, 2*perStore)
	for _, s := range []*Store{a, b} {
		s := s
		for i := 0; i < perStore; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				data, _, err := s.Get(key, func() ([]byte, error) { return payload, nil })
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(data, payload) {
					errs <- fmt.Errorf("lookup returned %q", data)
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Each store singleflights internally, so at most one compute per
	// instance; the rename race between the two is the point.
	if ca, cb := a.Stats().Computes, b.Stats().Computes; ca > 1 || cb > 1 {
		t.Errorf("computes per store = %d/%d, want at most 1 each", ca, cb)
	}
	raw, err := os.ReadFile(a.path(key))
	if err != nil {
		t.Fatal(err)
	}
	body, ok := decodeEntry(raw)
	if !ok || !bytes.Equal(body, payload) {
		t.Errorf("surviving entry invalid after writer race")
	}
}

// TestStoreVersionBumpInvalidates checks the content-address scheme: the
// code version is part of every digest, so bumping it makes old entries
// unreachable instead of stale.
func TestStoreVersionBumpInvalidates(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	cell := exp.CellKey{Model: "df", Class: exp.Small, Scheme: memprot.TreeLess, Count: 1}
	oldPayload := []byte(`{"cycles":1}`)
	newPayload := []byte(`{"cycles":2}`)

	mustGet(t, s, cell.Digest("v1"), func() ([]byte, error) { return oldPayload, nil })

	data, src := mustGet(t, s, cell.Digest("v2"), func() ([]byte, error) { return newPayload, nil })
	if src != SourceCompute || !bytes.Equal(data, newPayload) {
		t.Fatalf("version bump served stale entry: src=%s data=%q", src, data)
	}
	// The old version's entry is stranded, not clobbered: a rollback
	// still sees its own result.
	data, src = mustGet(t, s, cell.Digest("v1"), func() ([]byte, error) {
		t.Error("v1 entry lost")
		return nil, nil
	})
	if src != SourceDisk || !bytes.Equal(data, oldPayload) {
		t.Fatalf("v1 lookup after bump: src=%s data=%q", src, data)
	}
}

// TestStoreSingleflight gates one slow compute and floods the key: only
// one computation may run; everyone else waits and shares it.
func TestStoreSingleflight(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("singleflight")
	const waiters = 64

	started := make(chan struct{})
	release := make(chan struct{})
	var computes int
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, _, err := s.Get(key, func() ([]byte, error) {
				computes++ // only one goroutine may ever run this
				close(started)
				<-release
				return []byte("x"), nil
			})
			if err != nil || string(data) != "x" {
				t.Errorf("waiter: data=%q err=%v", data, err)
			}
		}()
	}
	<-started
	close(release)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	st := s.Stats()
	if st.Computes != 1 || st.FlightHits+st.DiskHits != waiters-1 {
		t.Errorf("stats after flood: %+v", st)
	}
}

// TestStoreErrorsNotCached: a failed computation must not poison the key.
func TestStoreErrorsNotCached(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("transient")
	boom := fmt.Errorf("transient failure")
	if _, _, err := s.Get(key, func() ([]byte, error) { return nil, boom }); err != boom {
		t.Fatalf("first Get err = %v, want the compute error", err)
	}
	data, src := mustGet(t, s, key, func() ([]byte, error) { return []byte("ok"), nil })
	if src != SourceCompute || string(data) != "ok" {
		t.Fatalf("retry after error: src=%s data=%q", src, data)
	}
}

func TestStoreRejectsInvalidKeys(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "short", "../../etc/passwd", testKey("x") + "00"} {
		if _, _, err := s.Get(key, func() ([]byte, error) { return nil, nil }); err == nil {
			t.Errorf("key %q accepted", key)
		}
	}
}
