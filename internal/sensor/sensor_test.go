package sensor

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

var prov = []byte("provisioning-secret-0123456789ab")

func pair(t *testing.T, id uint32) (*Sensor, *Receiver) {
	t.Helper()
	s, err := NewSensor(id, DeriveKey(prov, id))
	if err != nil {
		t.Fatal(err)
	}
	return s, NewReceiver(prov)
}

func TestRoundTrip(t *testing.T) {
	s, r := pair(t, 7)
	sample := []byte("camera frame #1")
	got, err := r.Accept(s.Capture(sample))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, sample) {
		t.Fatal("sample mismatch")
	}
	// Stream continues.
	if _, err := r.Accept(s.Capture([]byte("frame #2"))); err != nil {
		t.Fatal(err)
	}
}

func TestTamperDetected(t *testing.T) {
	s, r := pair(t, 7)
	p := s.Capture([]byte("frame"))
	p.Ciphertext[0] ^= 1
	if _, err := r.Accept(p); !errors.Is(err, ErrChannel) {
		t.Fatalf("tampered packet accepted: %v", err)
	}
}

func TestReplayDetected(t *testing.T) {
	s, r := pair(t, 7)
	p1 := s.Capture([]byte("frame 1"))
	if _, err := r.Accept(p1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Accept(p1); !errors.Is(err, ErrReplay) {
		t.Fatalf("replayed packet accepted: %v", err)
	}
}

func TestReorderRejected(t *testing.T) {
	s, r := pair(t, 7)
	p1 := s.Capture([]byte("frame 1"))
	p2 := s.Capture([]byte("frame 2"))
	if _, err := r.Accept(p2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Accept(p1); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale packet accepted after newer one: %v", err)
	}
}

func TestCrossSensorSpliceRejected(t *testing.T) {
	s1, r := pair(t, 1)
	p := s1.Capture([]byte("frame"))
	p.SensorID = 2 // attacker relabels the stream
	if _, err := r.Accept(p); !errors.Is(err, ErrChannel) {
		t.Fatalf("spliced sensor identity accepted: %v", err)
	}
}

func TestWrongProvisioningRejected(t *testing.T) {
	s, _ := pair(t, 7)
	evil := NewReceiver([]byte("wrong-provisioning-secret-000000"))
	if _, err := evil.Accept(s.Capture([]byte("frame"))); !errors.Is(err, ErrChannel) {
		t.Fatalf("foreign receiver decrypted the stream: %v", err)
	}
}

func TestKeyDerivationSeparatesSensors(t *testing.T) {
	if bytes.Equal(DeriveKey(prov, 1), DeriveKey(prov, 2)) {
		t.Fatal("sensor keys must differ")
	}
	if len(DeriveKey(prov, 1)) != 16 {
		t.Fatal("want AES-128 key")
	}
}

func TestManySensorsOneReceiver(t *testing.T) {
	r := NewReceiver(prov)
	for id := uint32(1); id <= 5; id++ {
		s, err := NewSensor(id, DeriveKey(prov, id))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := r.Accept(s.Capture([]byte{byte(id), byte(i)})); err != nil {
				t.Fatalf("sensor %d packet %d: %v", id, i, err)
			}
		}
	}
}

func TestBadKeySize(t *testing.T) {
	if _, err := NewSensor(1, []byte("short")); err == nil {
		t.Fatal("short key accepted")
	}
}

// Property: arbitrary samples round-trip; any single-byte corruption of
// the ciphertext is rejected.
func TestChannelProperty(t *testing.T) {
	s, r := pair(t, 9)
	f := func(sample []byte, flip uint16) bool {
		p := s.Capture(sample)
		if len(p.Ciphertext) > 0 && flip%2 == 0 {
			mut := p
			mut.Ciphertext = append([]byte(nil), p.Ciphertext...)
			mut.Ciphertext[int(flip)%len(mut.Ciphertext)] ^= 1 | byte(flip>>8)
			if _, err := r.Accept(mut); err == nil {
				return false
			}
		}
		got, err := r.Accept(p)
		return err == nil && bytes.Equal(got, sample)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
