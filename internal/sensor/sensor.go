// Package sensor implements the secure sensor→CPU channel the paper's
// end-to-end flow assumes (Sec. III-A): sensor devices encrypt their
// samples and protect their integrity before the data crosses the
// untrusted transport into the CPU enclave, Waspmote/Libelium-style. The
// channel uses AES-GCM under a per-sensor key derived from the device
// identity, with strictly monotonic sequence numbers so captured packets
// cannot be replayed or reordered.
package sensor

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors surfaced by the receiving enclave.
var (
	// ErrChannel covers authentication failures: tampered ciphertext,
	// spliced sensor identity, or a wrong key.
	ErrChannel = errors.New("sensor: channel authentication failed")
	// ErrReplay marks packets at or behind the receiver's sequence window.
	ErrReplay = errors.New("sensor: replayed or reordered packet")
)

// Packet is one protected sample in flight on the untrusted transport.
type Packet struct {
	SensorID   uint32
	Seq        uint64
	Ciphertext []byte // AES-GCM sealed: includes the tag
}

// DeriveKey derives a sensor's channel key from a provisioning secret and
// the sensor identity (so one compromised sensor key does not expose the
// others').
func DeriveKey(provisioning []byte, sensorID uint32) []byte {
	h := hmac.New(sha256.New, provisioning)
	var id [4]byte
	binary.LittleEndian.PutUint32(id[:], sensorID)
	h.Write(id[:])
	return h.Sum(nil)[:16]
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	blk, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("sensor: %w", err)
	}
	return cipher.NewGCM(blk)
}

// nonce packs the sensor id and sequence number into the GCM nonce: each
// (key, nonce) pair is used exactly once because Seq strictly increases.
func nonce(sensorID uint32, seq uint64) []byte {
	n := make([]byte, 12)
	binary.LittleEndian.PutUint32(n[0:4], sensorID)
	binary.LittleEndian.PutUint64(n[4:12], seq)
	return n
}

// Sensor is the capture-side endpoint.
type Sensor struct {
	id   uint32
	aead cipher.AEAD
	seq  uint64
}

// NewSensor creates a sensor endpoint with its derived channel key.
func NewSensor(id uint32, key []byte) (*Sensor, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	return &Sensor{id: id, aead: aead}, nil
}

// Capture seals one sample. The sensor id is bound as associated data, so
// a packet spliced onto another sensor's stream fails authentication.
func (s *Sensor) Capture(sample []byte) Packet {
	s.seq++
	var ad [4]byte
	binary.LittleEndian.PutUint32(ad[:], s.id)
	return Packet{
		SensorID:   s.id,
		Seq:        s.seq,
		Ciphertext: s.aead.Seal(nil, nonce(s.id, s.seq), sample, ad[:]),
	}
}

// Receiver is the CPU-enclave endpoint accepting packets from many
// sensors.
type Receiver struct {
	provisioning []byte
	aeads        map[uint32]cipher.AEAD
	lastSeq      map[uint32]uint64
}

// NewReceiver creates a receiver holding the provisioning secret (which
// lives inside the enclave).
func NewReceiver(provisioning []byte) *Receiver {
	p := make([]byte, len(provisioning))
	copy(p, provisioning)
	return &Receiver{
		provisioning: p,
		aeads:        make(map[uint32]cipher.AEAD),
		lastSeq:      make(map[uint32]uint64),
	}
}

// Accept authenticates, replay-checks, and decrypts one packet, returning
// the plaintext sample.
func (r *Receiver) Accept(p Packet) ([]byte, error) {
	aead, ok := r.aeads[p.SensorID]
	if !ok {
		var err error
		aead, err = newAEAD(DeriveKey(r.provisioning, p.SensorID))
		if err != nil {
			return nil, err
		}
		r.aeads[p.SensorID] = aead
	}
	if p.Seq <= r.lastSeq[p.SensorID] {
		return nil, fmt.Errorf("%w: sensor %d seq %d (last %d)", ErrReplay, p.SensorID, p.Seq, r.lastSeq[p.SensorID])
	}
	var ad [4]byte
	binary.LittleEndian.PutUint32(ad[:], p.SensorID)
	sample, err := aead.Open(nil, nonce(p.SensorID, p.Seq), p.Ciphertext, ad[:])
	if err != nil {
		return nil, fmt.Errorf("%w: sensor %d seq %d", ErrChannel, p.SensorID, p.Seq)
	}
	r.lastSeq[p.SensorID] = p.Seq
	return sample, nil
}
