package multinpu

import (
	"sync"

	"tnpu/internal/compiler"
	"tnpu/internal/memprot"
	"tnpu/internal/npu"
)

// maxCachedNPUs bounds the fixed-width program array in the cache key;
// wider tenancies (none exist — the serving layer caps at 4) simply skip
// the cache.
const maxCachedNPUs = 8

// runKey identifies one multi-NPU simulation exactly: the scheme, the
// full NPU hardware config (comparable struct), and the per-NPU program
// identities. Bus and engine are constructed fresh inside every run, and
// compiled programs are immutable and interned by the callers' program
// caches, so pointer identity is a sound stand-in for program content.
type runKey struct {
	scheme memprot.Scheme
	cfg    npu.Config
	count  int
	progs  [maxCachedNPUs]*compiler.Program
}

// RunCache memoizes whole multi-NPU Results. Multi-NPU runs cannot use
// the per-layer memo (machines interleave on shared state), so repeated
// cells — figure sweeps re-running the same (scheme, config, programs)
// tuple, the serving layer's scalability curves — pay the full arbitrated
// simulation every time without it. Results are deep-copied on both store
// and hit, so callers may mutate what they receive. Safe for concurrent
// use; the expected caller (exp.Runner) additionally singleflights per
// cell, so no duplicate-suppression is attempted here.
type RunCache struct {
	mu     sync.Mutex
	m      map[runKey]*Result
	hits   uint64
	misses uint64
}

// NewRunCache returns an empty joint-run cache.
func NewRunCache() *RunCache {
	return &RunCache{m: make(map[runKey]*Result)}
}

// Stats returns cumulative hit/miss counts.
func (c *RunCache) Stats() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func key(progs []*compiler.Program, scheme memprot.Scheme, cfg npu.Config) (runKey, bool) {
	if len(progs) == 0 || len(progs) > maxCachedNPUs {
		return runKey{}, false
	}
	k := runKey{scheme: scheme, cfg: cfg, count: len(progs)}
	copy(k.progs[:], progs)
	return k, true
}

// lookup returns a deep copy of a cached result. A nil cache never hits.
func (c *RunCache) lookup(progs []*compiler.Program, scheme memprot.Scheme, cfg npu.Config) (Result, bool) {
	if c == nil {
		return Result{}, false
	}
	k, ok := key(progs, scheme, cfg)
	if !ok {
		return Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.m[k]; ok {
		c.hits++
		return cloneResult(r), true
	}
	c.misses++
	return Result{}, false
}

// store deep-copies res into the cache. A nil cache drops it.
func (c *RunCache) store(progs []*compiler.Program, scheme memprot.Scheme, cfg npu.Config, res *Result) {
	if c == nil {
		return
	}
	k, ok := key(progs, scheme, cfg)
	if !ok {
		return
	}
	cl := cloneResult(res)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[k] = &cl
}

func cloneResult(r *Result) Result {
	out := *r
	out.PerNPU = append([]uint64(nil), r.PerNPU...)
	out.NPUs = append([]NPUStats(nil), r.NPUs...)
	return out
}
