package multinpu

import (
	"testing"

	"tnpu/internal/compiler"
	"tnpu/internal/memprot"
	"tnpu/internal/model"
	"tnpu/internal/npu"
)

func compileFor(t *testing.T, short string, cfg npu.Config) *compiler.Program {
	t.Helper()
	m, err := model.ByShort(short)
	if err != nil {
		t.Fatal(err)
	}
	p, err := compiler.Compile(m, cfg.CompilerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSingleNPUMatchesNPURun(t *testing.T) {
	cfg := npu.SmallNPU()
	prog := compileFor(t, "df", cfg)
	single, err := npu.Run(prog, memprot.Baseline, cfg)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(prog, memprot.Baseline, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if single.Cycles != multi.Cycles {
		t.Errorf("1-NPU multinpu run (%d) differs from npu.Run (%d)", multi.Cycles, single.Cycles)
	}
	if single.Traffic.Total() != multi.Traffic.Total() {
		t.Errorf("traffic differs: %d vs %d", multi.Traffic.Total(), single.Traffic.Total())
	}
}

func TestMoreNPUsSlowerWallClock(t *testing.T) {
	// Shared bandwidth: n copies of the same work cannot finish faster
	// than one; with contention they finish slower per copy.
	cfg := npu.SmallNPU()
	prog := compileFor(t, "agz", cfg)
	var prev uint64
	for n := 1; n <= 3; n++ {
		r, err := Run(prog, memprot.Unsecure, cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles < prev {
			t.Errorf("%d NPUs finished before %d NPUs: %d < %d", n, n-1, r.Cycles, prev)
		}
		prev = r.Cycles
		if len(r.PerNPU) != n {
			t.Fatalf("PerNPU has %d entries, want %d", len(r.PerNPU), n)
		}
	}
}

func TestFairness(t *testing.T) {
	// Round-robin arbitration: identical workloads must finish within a
	// tight band of one another.
	cfg := npu.SmallNPU()
	prog := compileFor(t, "df", cfg)
	r, err := Run(prog, memprot.Unsecure, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := r.PerNPU[0], r.PerNPU[0]
	for _, c := range r.PerNPU {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if float64(hi-lo) > 0.02*float64(hi) {
		t.Errorf("unfair completion spread: %v", r.PerNPU)
	}
}

func TestTNPUAdvantageGrowsWithNPUs(t *testing.T) {
	// Fig. 16's claim: the baseline's counter/hash caches are shared, so
	// its normalized overhead grows faster with NPU count than TNPU's.
	cfg := npu.SmallNPU()
	prog := compileFor(t, "res", cfg)
	gap := func(n int) float64 {
		var cyc [3]uint64
		for i, s := range memprot.Schemes() {
			r, err := Run(prog, s, cfg, n)
			if err != nil {
				t.Fatal(err)
			}
			cyc[i] = r.Cycles
		}
		return float64(cyc[1])/float64(cyc[0]) - float64(cyc[2])/float64(cyc[0])
	}
	g1, g3 := gap(1), gap(3)
	if g3 <= 0 || g1 <= 0 {
		t.Fatalf("tnpu not ahead: gap1=%.4f gap3=%.4f", g1, g3)
	}
	if g3 < g1*0.9 {
		t.Errorf("baseline-vs-tnpu gap should not shrink with more NPUs: 1->%.4f 3->%.4f", g1, g3)
	}
}

func TestSharedCounterCacheContention(t *testing.T) {
	// Baseline counter miss rate must rise when more NPUs share the 4KB
	// counter cache — the mechanism behind Fig. 16.
	cfg := npu.SmallNPU()
	prog := compileFor(t, "res", cfg)
	r1, err := Run(prog, memprot.Baseline, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(prog, memprot.Baseline, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Counter.MissRate() <= r1.Counter.MissRate() {
		t.Errorf("counter miss rate did not rise with sharing: %.4f -> %.4f",
			r1.Counter.MissRate(), r3.Counter.MissRate())
	}
}

func TestErrors(t *testing.T) {
	cfg := npu.SmallNPU()
	prog := compileFor(t, "df", cfg)
	if _, err := Run(prog, memprot.Unsecure, cfg, 0); err == nil {
		t.Error("zero count accepted")
	}
	bad := cfg
	bad.Mem.FreqHz = 0
	if _, err := Run(prog, memprot.Unsecure, bad, 1); err == nil {
		t.Error("bad config accepted")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := npu.SmallNPU()
	prog := compileFor(t, "agz", cfg)
	a, _ := Run(prog, memprot.TreeLess, cfg, 2)
	b, _ := Run(prog, memprot.TreeLess, cfg, 2)
	if a.Cycles != b.Cycles || a.Traffic.Total() != b.Traffic.Total() {
		t.Error("multi-NPU run not deterministic")
	}
}

func TestRunMixedWorkloads(t *testing.T) {
	cfg := npu.SmallNPU()
	pa := compileFor(t, "df", cfg)
	pb := compileFor(t, "agz", cfg)
	mixed, err := RunMixed([]*compiler.Program{pa, pb}, memprot.TreeLess, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed.PerNPU) != 2 {
		t.Fatalf("PerNPU = %v", mixed.PerNPU)
	}
	// Each workload slower than alone (shared bandwidth), faster than if
	// it had to run both sequentially.
	soloA, _ := Run(pa, memprot.TreeLess, cfg, 1)
	soloB, _ := Run(pb, memprot.TreeLess, cfg, 1)
	if mixed.PerNPU[0] < soloA.Cycles || mixed.PerNPU[1] < soloB.Cycles {
		t.Errorf("contended runs faster than solo: %v vs %d/%d", mixed.PerNPU, soloA.Cycles, soloB.Cycles)
	}
	if mixed.Cycles >= soloA.Cycles+soloB.Cycles {
		t.Errorf("no concurrency benefit: mixed %d vs serial %d", mixed.Cycles, soloA.Cycles+soloB.Cycles)
	}
}

func TestRunMixedErrors(t *testing.T) {
	cfg := npu.SmallNPU()
	if _, err := RunMixed(nil, memprot.Unsecure, cfg); err == nil {
		t.Error("empty program list accepted")
	}
}
