package multinpu

import (
	"fmt"
	"reflect"
	"testing"

	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/isa"
	"tnpu/internal/memprot"
	"tnpu/internal/model"
	"tnpu/internal/npu"
	"tnpu/internal/tensor"
)

// stripRuns zeroes the execution-path-dependent observability counter:
// the block-granular reference serves no engine-level run bursts, so Runs
// is the one Result field allowed to differ between the paths.
func stripRuns(r Result) Result {
	r.NPUs = append([]NPUStats(nil), r.NPUs...)
	for i := range r.NPUs {
		r.NPUs[i].Runs = 0
	}
	return r
}

// diffMulti runs the same multi-NPU workload through the block-granular
// reference and the horizon-bounded arbitration loop and requires exact
// agreement on every observable except NPUStats.Runs.
func diffMulti(t *testing.T, progs []*compiler.Program, scheme memprot.Scheme, cfg npu.Config) {
	t.Helper()
	ForceBlockInterleave(true)
	ref, errRef := RunMixed(progs, scheme, cfg)
	ForceBlockInterleave(false)
	arb, errArb := RunMixed(progs, scheme, cfg)
	if (errRef == nil) != (errArb == nil) {
		t.Fatalf("error divergence: block=%v arbitrated=%v", errRef, errArb)
	}
	if errRef != nil {
		return
	}
	if got, want := stripRuns(arb), stripRuns(ref); !reflect.DeepEqual(got, want) {
		t.Fatalf("horizon-bounded arbitration diverges from block interleave (scheme %v, cfg %s):\n  block:      %+v\n  arbitrated: %+v",
			scheme, cfg.Name, want, got)
	}
}

// TestMultiNPUDifferential is the multi-NPU leg of the differential
// harness: all schemes x count 2-3 x df/res x Small/Large NPUs. -short
// keeps the df/Small column only.
func TestMultiNPUDifferential(t *testing.T) {
	for _, cfg := range []npu.Config{npu.SmallNPU(), npu.LargeNPU()} {
		for _, short := range []string{"df", "res"} {
			if testing.Short() && (cfg.Name != "small" || short != "df") {
				continue
			}
			prog := compileFor(t, short, cfg)
			for _, scheme := range memprot.AllSchemes() {
				for count := 2; count <= 3; count++ {
					t.Run(fmt.Sprintf("%s/%s/%s/x%d", cfg.Name, short, scheme, count), func(t *testing.T) {
						progs := make([]*compiler.Program, count)
						for i := range progs {
							progs[i] = prog
						}
						diffMulti(t, progs, scheme, cfg)
					})
				}
			}
		}
	}
}

// TestMixedTenancyDifferential pins the arbitration equivalence when the
// co-tenants run different models (desynchronized readiness patterns).
func TestMixedTenancyDifferential(t *testing.T) {
	cfg := npu.SmallNPU()
	df := compileFor(t, "df", cfg)
	res := compileFor(t, "res", cfg)
	for _, scheme := range memprot.AllSchemes() {
		t.Run(scheme.String(), func(t *testing.T) {
			diffMulti(t, []*compiler.Program{df, res}, scheme, cfg)
		})
	}
}

// TestRunCachedReplay pins the joint-run cache: a second identical run is
// a hit and returns a result equal to the computed one, deep-copied so
// caller mutation cannot poison the cache.
func TestRunCachedReplay(t *testing.T) {
	cfg := npu.SmallNPU()
	prog := compileFor(t, "df", cfg)
	cache := NewRunCache()
	first, err := RunCached(prog, memprot.TreeLess, cfg, 2, nil, cache)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunCached(prog, memprot.TreeLess, cfg, 2, nil, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cache replay differs:\n  computed: %+v\n  replayed: %+v", first, second)
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	second.PerNPU[0] = 0xdead
	second.NPUs[0].Blocks = 0xdead
	third, err := RunCached(prog, memprot.TreeLess, cfg, 2, nil, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, third) {
		t.Fatal("mutating a returned result poisoned the cache")
	}
	// Mixed tenancy caches under its own key.
	res := compileFor(t, "res", cfg)
	mixed, err := RunMixedCached([]*compiler.Program{prog, res}, memprot.TreeLess, cfg, nil, cache)
	if err != nil {
		t.Fatal(err)
	}
	mixed2, err := RunMixedCached([]*compiler.Program{prog, res}, memprot.TreeLess, cfg, nil, cache)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mixed, mixed2) {
		t.Fatal("mixed-tenancy cache replay differs")
	}
	if mixed.Cycles == first.Cycles {
		t.Fatal("mixed-tenancy run unexpectedly identical to homogeneous run")
	}
}

// TestPerNPUAttribution sanity-checks the satellite counters: every NPU
// moved blocks, bytes match block counts, homogeneous co-tenants moved
// identical block counts, and the arbitrated path reports run bursts.
func TestPerNPUAttribution(t *testing.T) {
	cfg := npu.SmallNPU()
	prog := compileFor(t, "df", cfg)
	r, err := Run(prog, memprot.TreeLess, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.NPUs) != 2 {
		t.Fatalf("NPUs has %d entries, want 2", len(r.NPUs))
	}
	for i, s := range r.NPUs {
		if s.Cycles != r.PerNPU[i] {
			t.Errorf("NPU %d: stats cycles %d != PerNPU %d", i, s.Cycles, r.PerNPU[i])
		}
		if s.Blocks == 0 {
			t.Errorf("NPU %d moved no blocks", i)
		}
		if s.ReadBytes+s.WriteBytes != s.Blocks*dram.BlockBytes {
			t.Errorf("NPU %d: %d read + %d written bytes != %d blocks * %d",
				i, s.ReadBytes, s.WriteBytes, s.Blocks, dram.BlockBytes)
		}
	}
	if r.NPUs[0].Blocks != r.NPUs[1].Blocks {
		t.Errorf("homogeneous co-tenants moved different block counts: %d vs %d", r.NPUs[0].Blocks, r.NPUs[1].Blocks)
	}
	if r.NPUs[0].Runs == 0 && r.NPUs[1].Runs == 0 {
		t.Error("arbitrated path reported zero run bursts for both NPUs")
	}
}

// --- fuzz ------------------------------------------------------------------

type fuzzReader struct {
	data []byte
	pos  int
}

func (f *fuzzReader) byte() byte {
	if f.pos >= len(f.data) {
		return 0
	}
	b := f.data[f.pos]
	f.pos++
	return b
}

func (f *fuzzReader) u16() uint64 { return uint64(f.byte())<<8 | uint64(f.byte()) }

// buildMultiFuzzProgram derives a small synthetic program hunting the
// arbitration boundaries: mixed DMA/compute instructions whose segment
// sizes produce runs that straddle the co-tenant's ready time, compute
// stalls that desynchronize otherwise-lockstep machines, and a
// counter-hammer that parks a minor counter one short of / exactly at /
// one past the 7-bit wrap so the baseline burst guard's edge lands inside
// a would-be streak.
func buildMultiFuzzProgram(f *fuzzReader) *compiler.Program {
	var tr isa.Trace
	nInstr := 2 + int(f.byte()%8)
	for i := 0; i < nInstr; i++ {
		var in isa.Instr
		switch f.byte() % 8 {
		case 0, 1, 2:
			in.Op = isa.OpMvIn
		case 3, 4:
			in.Op = isa.OpMvOut
		case 5:
			in.Op = isa.OpCompute
			in.Cycles = 1 + f.u16()
		case 6:
			// Long dense segment: a run big enough that the horizon clip
			// must split it against the co-tenant's readiness.
			in.Op = isa.OpMvIn
			in.Tensor = tensor.ID(f.byte() % 8)
			in.Tile = int(f.byte() % 16)
			in.Version = uint64(f.byte() % 5)
			blocks := 256 + f.u16()%2048
			in.Segments = append(in.Segments, isa.Segment{Addr: f.u16() * 64, Bytes: blocks * dram.BlockBytes})
		default:
			// Near-overflow hammer: rewrite one aligned range 126/127/128
			// times so the baseline write-burst guard (overflowPending)
			// trips exactly at, one before, or one past the wrap.
			in.Op = isa.OpMvOut
			in.Tensor = tensor.ID(f.byte() % 8)
			in.Tile = int(f.byte() % 16)
			in.Version = uint64(f.byte() % 5)
			span := isa.Segment{Addr: f.u16() * 64, Bytes: (1 + f.u16()%32) * dram.BlockBytes}
			rep := 126 + int(f.byte()%3)
			for j := 0; j < rep; j++ {
				in.Segments = append(in.Segments, span)
			}
		}
		if in.IsDMA() && len(in.Segments) == 0 {
			in.Tensor = tensor.ID(f.byte() % 8)
			in.Tile = int(f.byte() % 16)
			in.Version = uint64(f.byte() % 5)
			nSeg := 1 + int(f.byte()%3)
			for s := 0; s < nSeg; s++ {
				in.Segments = append(in.Segments, isa.Segment{
					Addr:  f.u16() * 37, // unaligned, spread over ~2.4MB
					Bytes: 1 + f.u16()%8192,
				})
			}
		}
		if i > 0 && f.byte()%2 == 0 {
			in.Deps = append(in.Deps, int32(int(f.byte())%i))
		}
		tr.Append(in)
	}
	if err := tr.Validate(); err != nil {
		panic(err) // construction above must always be valid
	}
	return &compiler.Program{Trace: tr}
}

// FuzzMultiVsBlock drives random co-tenant sets, memory geometries, and
// NPU counts through both arbitration loops and requires exact agreement
// on every observable (except the Runs counter). Identical programs give
// lockstep machines — near-simultaneous readiness on every block — while
// distinct programs exercise the streaky regime where horizon clipping
// matters.
func FuzzMultiVsBlock(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 1, 1, 1, 6, 0, 4, 0, 0, 1, 0, 64, 5, 0, 10})
	f.Add([]byte{0xff, 0x80, 0x41, 0x00, 0x13, 0x37, 0xca, 0xfe, 0x00, 0x01, 0x02, 0x03})
	f.Add([]byte{3, 3, 3, 3, 200, 200, 200, 200, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := &fuzzReader{data: data}
		mem := dram.Config{
			FreqHz:               []uint64{1_000_000_000, 2_750_000_000, 3_000_000_000}[fr.byte()%3],
			BandwidthBytesPerSec: []uint64{7_000_000_000, 11_000_000_000, 22_000_000_000}[fr.byte()%3],
			LatencyCycles:        []uint64{0, 10, 100}[fr.byte()%3],
			Channels:             int(fr.byte()%4) + 1,
		}
		scheme := memprot.AllSchemes()[fr.byte()%4]
		count := 2 + int(fr.byte()%2)
		identical := fr.byte()%2 == 0
		progs := make([]*compiler.Program, count)
		progs[0] = buildMultiFuzzProgram(fr)
		for i := 1; i < count; i++ {
			if identical {
				progs[i] = progs[0]
			} else {
				progs[i] = buildMultiFuzzProgram(fr)
			}
		}
		cfg := npu.SmallNPU()
		cfg.Mem = mem

		ForceBlockInterleave(true)
		ref, errRef := RunMixed(progs, scheme, cfg)
		ForceBlockInterleave(false)
		arb, errArb := RunMixed(progs, scheme, cfg)
		if (errRef == nil) != (errArb == nil) {
			t.Fatalf("error divergence: block=%v arbitrated=%v", errRef, errArb)
		}
		if errRef != nil {
			return
		}
		if got, want := stripRuns(arb), stripRuns(ref); !reflect.DeepEqual(got, want) {
			t.Fatalf("divergence (scheme %v, count %d, identical %v, mem %+v):\n  block:      %+v\n  arbitrated: %+v",
				scheme, count, identical, mem, want, got)
		}
	})
}

// --- allocation pin --------------------------------------------------------

// TestMultiNPUNoAllocs pins the steady-state arbitration loop at zero
// allocations per iteration: one scan plus one horizon-bounded serve.
// The baseline scheme is excluded — its minors journal allocates on each
// first-touched counter line (the same waived first-touch allocations as
// the single-NPU pin).
func TestMultiNPUNoAllocs(t *testing.T) {
	cfg := npu.SmallNPU()
	prog := compileFor(t, "df", cfg)
	for _, scheme := range []memprot.Scheme{memprot.Unsecure, memprot.TreeLess, memprot.EncryptOnly} {
		t.Run(scheme.String(), func(t *testing.T) {
			bus := dram.NewBus(cfg.Mem)
			eng, err := memprot.New(scheme, memprot.DefaultConfig(bus))
			if err != nil {
				t.Fatal(err)
			}
			machines := make([]*npu.Machine, 2)
			for i := range machines {
				machines[i] = npu.NewMachineAt(prog, eng, uint64(i)*contextStride, uint64(i)*slotStride)
			}
			last := 0
			step := func() {
				// One arbitrate() iteration: rotating second-min scan, then
				// a horizon-clipped serve of the winner.
				count := len(machines)
				best, bestReady := -1, ^uint64(0)
				horizon := ^uint64(0)
				for off := 1; off <= count; off++ {
					i := (last + off) % count
					ready, ok := machines[i].NextReady()
					if !ok {
						continue
					}
					if ready < bestReady {
						horizon = bestReady
						best, bestReady = i, ready
					} else if ready < horizon {
						horizon = ready
					}
				}
				if best < 0 {
					return
				}
				machines[best].ServeRunUntil(horizon)
				last = best
			}
			for i := 0; i < 50; i++ { // warm caches and the issue windows
				step()
			}
			if avg := testing.AllocsPerRun(100, step); avg != 0 {
				t.Errorf("arbitration iteration allocates %.1f times per step", avg)
			}
		})
	}
}

// --- benchmark -------------------------------------------------------------

// BenchmarkMultiNPU measures co-tenant simulation on three paths: the
// block-granular reference ("block"), live horizon-bounded arbitration
// ("arbitrated"), and the production path with the shared joint-run cache
// ("batched" — replays repeated cells from cache, the harness's and the
// serving layer's steady state, mirroring BenchmarkMachineRun's memoized
// leg). BENCH_PR8.json records block/batched ratios.
func BenchmarkMultiNPU(b *testing.B) {
	cfg := npu.LargeNPU()
	m := compileForBench(b, "res", cfg)
	cache := NewRunCache()
	for _, scheme := range memprot.AllSchemes() {
		for count := 2; count <= 3; count++ {
			name := fmt.Sprintf("large/res/%s/x%d", scheme, count)
			b.Run(name+"/block", func(b *testing.B) {
				ForceBlockInterleave(true)
				defer ForceBlockInterleave(false)
				for i := 0; i < b.N; i++ {
					if _, err := Run(m, scheme, cfg, count); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(name+"/arbitrated", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := Run(m, scheme, cfg, count); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(name+"/batched", func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := RunCached(m, scheme, cfg, count, nil, cache); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func compileForBench(b *testing.B, short string, cfg npu.Config) *compiler.Program {
	b.Helper()
	mdl, err := model.ByShort(short)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := compiler.Compile(mdl, cfg.CompilerConfig())
	if err != nil {
		b.Fatal(err)
	}
	return prog
}
