// Package multinpu simulates 1–3 NPUs sharing the memory controller and
// the security engine, the Sec. V-C scalability setup: every NPU has its
// own IOMMU and context memory, but bandwidth and the metadata caches
// (counter, hash, MAC) are shared, so baseline counter/hash working sets
// collide — the effect that widens TNPU's advantage as NPU count grows.
package multinpu

import (
	"fmt"
	"sync/atomic"

	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/memprot"
	"tnpu/internal/npu"
	"tnpu/internal/stats"
)

// contextStride separates NPU contexts in physical memory (each context's
// tensors, and its version-table slots, live in a disjoint region).
const contextStride uint64 = 256 << 20

// slotStride separates the contexts' version tables within the 128MB
// fully protected region.
const slotStride uint64 = 2 << 20

// NPUStats attributes served work to one NPU — the per-tenant QoS view of
// a co-tenant run. Cycles, Blocks, and byte counters are identical across
// execution paths (pinned by the differential suite); Runs counts
// engine-level run bursts and is observability for the batched path only
// (zero under block-granular interleave).
type NPUStats struct {
	Cycles     uint64
	Blocks     uint64
	ReadBytes  uint64
	WriteBytes uint64
	Runs       uint64
}

// Result summarizes a multi-NPU run.
type Result struct {
	Scheme memprot.Scheme
	// Cycles is the completion time of the slowest NPU — the paper's
	// normalized execution time for an n-NPU run.
	Cycles uint64
	// PerNPU is each NPU's own completion time.
	PerNPU []uint64
	// NPUs is the per-NPU served-work attribution (PerNPU cycles again,
	// plus block/byte/run counters).
	NPUs    []NPUStats
	Traffic stats.Traffic
	Counter stats.CacheStats
	Hash    stats.CacheStats
	MAC     stats.CacheStats
}

// forceBlockInterleave selects the block-granular reference arbitration
// for every subsequent multi-NPU run; the differential harness uses it for
// A/B equivalence checks.
var forceBlockInterleave atomic.Bool

// ForceBlockInterleave globally selects the block-granular reference
// arbitration loop for multi-NPU runs started after the call.
func ForceBlockInterleave(on bool) { forceBlockInterleave.Store(on) }

// Run executes count copies of prog (the paper runs the same inference
// model on every NPU) under one shared bus and protection engine.
func Run(prog *compiler.Program, scheme memprot.Scheme, cfg npu.Config, count int) (Result, error) {
	return RunCached(prog, scheme, cfg, count, nil, nil)
}

// RunMemo is Run with a shared layer memo (may be nil); see RunCached.
func RunMemo(prog *compiler.Program, scheme memprot.Scheme, cfg npu.Config, count int, memo *npu.LayerMemo) (Result, error) {
	return RunCached(prog, scheme, cfg, count, memo, nil)
}

// RunCached is Run with a shared layer memo and a shared joint-run cache,
// either of which may be nil. Layer memoization applies to single-NPU
// runs, which execute whole DMA runs on one machine; multi-NPU runs
// interleave machines on the shared engine, so their layers have no
// private state signature and always run live — the joint-run cache is
// what makes repeated multi-NPU cells (figure sweeps, serving) cheap.
func RunCached(prog *compiler.Program, scheme memprot.Scheme, cfg npu.Config, count int, memo *npu.LayerMemo, cache *RunCache) (Result, error) {
	if count <= 0 {
		return Result{}, fmt.Errorf("multinpu: count must be positive, got %d", count)
	}
	progs := make([]*compiler.Program, count)
	for i := range progs {
		progs[i] = prog
	}
	return RunMixedCached(progs, scheme, cfg, memo, cache)
}

// RunMixed executes a different program per NPU — the mixed-tenancy
// extension of the Sec. V-C setup (each context still gets its own memory
// region and version table; only bandwidth, the security engine, and the
// metadata caches are shared).
func RunMixed(progs []*compiler.Program, scheme memprot.Scheme, cfg npu.Config) (Result, error) {
	return RunMixedCached(progs, scheme, cfg, nil, nil)
}

// RunMixedCached is RunMixed with a shared layer memo and joint-run cache
// (either may be nil), giving mixed-tenancy runs the same memo/fast-path
// treatment as RunMemo's homogeneous runs.
func RunMixedCached(progs []*compiler.Program, scheme memprot.Scheme, cfg npu.Config, memo *npu.LayerMemo, cache *RunCache) (Result, error) {
	if res, ok := cache.lookup(progs, scheme, cfg); ok {
		return res, nil
	}
	res, err := runMixed(progs, scheme, cfg, memo)
	if err != nil {
		return Result{}, err
	}
	cache.store(progs, scheme, cfg, &res)
	return res, nil
}

func runMixed(progs []*compiler.Program, scheme memprot.Scheme, cfg npu.Config, memo *npu.LayerMemo) (Result, error) {
	count := len(progs)
	if count == 0 {
		return Result{}, fmt.Errorf("multinpu: no programs")
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	for i, p := range progs {
		if p.MemoryTop > contextStride {
			return Result{}, fmt.Errorf("multinpu: program %d needs %d bytes, context stride is %d", i, p.MemoryTop, contextStride)
		}
	}
	bus := dram.NewBus(cfg.Mem)
	eng, err := memprot.New(scheme, memprot.DefaultConfig(bus))
	if err != nil {
		return Result{}, err
	}

	machines := make([]*npu.Machine, count)
	for i := range machines {
		machines[i] = npu.NewMachineAt(progs[i], eng, uint64(i)*contextStride, uint64(i)*slotStride)
	}

	if count == 1 {
		// A lone NPU has the engine to itself: run whole DMA runs through
		// the batched path (cycle-identical to the block interleave below,
		// pinned by the differential suite) and let the memo replay
		// recurring layers.
		machines[0].RunMemoized(memo)
		return assemble(scheme, eng, machines), nil
	}

	if forceBlockInterleave.Load() || !machines[0].Batched() {
		arbitrateBlocks(machines)
	} else {
		arbitrate(machines)
	}
	return assemble(scheme, eng, machines), nil
}

// arbitrate is the horizon-bounded streak arbitration loop (DESIGN.md
// §6f): each scan selects the earliest-ready machine exactly as the block
// reference does, but also computes the interaction horizon — the minimum
// ready time over the other machines — and lets the winner serve as much
// of its instruction as provably issues strictly below that horizon.
// Other machines' ready times cannot change while the winner serves
// (NextReady mutates state only for machines between instructions, and
// every machine is active or exhausted after a scan), so the horizon is
// frozen for the duration of the streak and the serve order is exactly
// the reference's. Ties rotate as in the reference: the winner keeps
// serving only while strictly below every other ready time.
//
//tnpu:noalloc
func arbitrate(machines []*npu.Machine) {
	count := len(machines)
	last := 0
	for {
		best, bestReady := -1, ^uint64(0)
		horizon := ^uint64(0)
		for off := 1; off <= count; off++ {
			i := (last + off) % count
			ready, ok := machines[i].NextReady()
			if !ok {
				continue
			}
			if ready < bestReady {
				horizon = bestReady
				best, bestReady = i, ready
			} else if ready < horizon {
				horizon = ready
			}
		}
		if best < 0 {
			break
		}
		machines[best].ServeRunUntil(horizon)
		last = best
	}
}

// arbitrateBlocks is the retained block-granular reference: always serve
// one block to the machine whose next block is ready earliest; ties
// rotate so no NPU starves. The horizon-bounded loop above is pinned
// cycle- and stats-identical to this one by the differential harness and
// FuzzMultiVsBlock.
//
//tnpu:noalloc
func arbitrateBlocks(machines []*npu.Machine) {
	count := len(machines)
	last := 0
	for {
		best, bestReady := -1, ^uint64(0)
		for off := 1; off <= count; off++ {
			i := (last + off) % count
			ready, ok := machines[i].NextReady()
			if !ok {
				continue
			}
			if ready < bestReady {
				best, bestReady = i, ready
			}
		}
		if best < 0 {
			break
		}
		machines[best].ServeBlock()
		last = best
	}
}

// assemble flushes the engine and summarizes a finished run.
func assemble(scheme memprot.Scheme, eng memprot.Engine, machines []*npu.Machine) Result {
	res := Result{
		Scheme: scheme,
		PerNPU: make([]uint64, len(machines)),
		NPUs:   make([]NPUStats, len(machines)),
	}
	for i, m := range machines {
		res.PerNPU[i] = m.Cycles()
		res.NPUs[i] = NPUStats{
			Cycles:     m.Cycles(),
			Blocks:     m.BlocksMoved(),
			ReadBytes:  m.BlocksRead() * dram.BlockBytes,
			WriteBytes: m.BlocksWritten() * dram.BlockBytes,
			Runs:       m.RunsServed(),
		}
		if m.Cycles() > res.Cycles {
			res.Cycles = m.Cycles()
		}
	}
	eng.Flush(res.Cycles)
	res.Traffic = *eng.Traffic()
	res.Counter = *eng.CounterStats()
	res.Hash = *eng.HashStats()
	res.MAC = *eng.MACStats()
	return res
}
