// Package multinpu simulates 1–3 NPUs sharing the memory controller and
// the security engine, the Sec. V-C scalability setup: every NPU has its
// own IOMMU and context memory, but bandwidth and the metadata caches
// (counter, hash, MAC) are shared, so baseline counter/hash working sets
// collide — the effect that widens TNPU's advantage as NPU count grows.
package multinpu

import (
	"fmt"

	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/memprot"
	"tnpu/internal/npu"
	"tnpu/internal/stats"
)

// contextStride separates NPU contexts in physical memory (each context's
// tensors, and its version-table slots, live in a disjoint region).
const contextStride uint64 = 256 << 20

// slotStride separates the contexts' version tables within the 128MB
// fully protected region.
const slotStride uint64 = 2 << 20

// Result summarizes a multi-NPU run.
type Result struct {
	Scheme memprot.Scheme
	// Cycles is the completion time of the slowest NPU — the paper's
	// normalized execution time for an n-NPU run.
	Cycles uint64
	// PerNPU is each NPU's own completion time.
	PerNPU  []uint64
	Traffic stats.Traffic
	Counter stats.CacheStats
	Hash    stats.CacheStats
	MAC     stats.CacheStats
}

// Run executes count copies of prog (the paper runs the same inference
// model on every NPU) under one shared bus and protection engine.
func Run(prog *compiler.Program, scheme memprot.Scheme, cfg npu.Config, count int) (Result, error) {
	return RunMemo(prog, scheme, cfg, count, nil)
}

// RunMemo is Run with a shared layer memo (may be nil). Memoization
// applies to single-NPU runs, which execute whole DMA runs on one machine;
// multi-NPU runs interleave machines block-by-block on the shared engine,
// so their layers have no private state signature and always run live.
func RunMemo(prog *compiler.Program, scheme memprot.Scheme, cfg npu.Config, count int, memo *npu.LayerMemo) (Result, error) {
	if count <= 0 {
		return Result{}, fmt.Errorf("multinpu: count must be positive, got %d", count)
	}
	progs := make([]*compiler.Program, count)
	for i := range progs {
		progs[i] = prog
	}
	return runMixed(progs, scheme, cfg, memo)
}

// RunMixed executes a different program per NPU — the mixed-tenancy
// extension of the Sec. V-C setup (each context still gets its own memory
// region and version table; only bandwidth, the security engine, and the
// metadata caches are shared).
func RunMixed(progs []*compiler.Program, scheme memprot.Scheme, cfg npu.Config) (Result, error) {
	return runMixed(progs, scheme, cfg, nil)
}

func runMixed(progs []*compiler.Program, scheme memprot.Scheme, cfg npu.Config, memo *npu.LayerMemo) (Result, error) {
	count := len(progs)
	if count == 0 {
		return Result{}, fmt.Errorf("multinpu: no programs")
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	for i, p := range progs {
		if p.MemoryTop > contextStride {
			return Result{}, fmt.Errorf("multinpu: program %d needs %d bytes, context stride is %d", i, p.MemoryTop, contextStride)
		}
	}
	bus := dram.NewBus(cfg.Mem)
	eng, err := memprot.New(scheme, memprot.DefaultConfig(bus))
	if err != nil {
		return Result{}, err
	}

	machines := make([]*npu.Machine, count)
	for i := range machines {
		machines[i] = npu.NewMachineAt(progs[i], eng, uint64(i)*contextStride, uint64(i)*slotStride)
	}

	if count == 1 {
		// A lone NPU has the engine to itself: run whole DMA runs through
		// the batched path (cycle-identical to the block interleave below,
		// pinned by the differential suite) and let the memo replay
		// recurring layers.
		machines[0].RunMemoized(memo)
		return assemble(scheme, eng, machines), nil
	}

	// Block-granular arbitration: always serve the machine whose next
	// block is ready earliest; ties rotate so no NPU starves.
	last := 0
	for {
		best, bestReady := -1, ^uint64(0)
		for off := 1; off <= count; off++ {
			i := (last + off) % count
			ready, ok := machines[i].NextReady()
			if !ok {
				continue
			}
			if ready < bestReady {
				best, bestReady = i, ready
			}
		}
		if best < 0 {
			break
		}
		machines[best].ServeBlock()
		last = best
	}
	return assemble(scheme, eng, machines), nil
}

// assemble flushes the engine and summarizes a finished run.
func assemble(scheme memprot.Scheme, eng memprot.Engine, machines []*npu.Machine) Result {
	res := Result{Scheme: scheme, PerNPU: make([]uint64, len(machines))}
	for i, m := range machines {
		res.PerNPU[i] = m.Cycles()
		if m.Cycles() > res.Cycles {
			res.Cycles = m.Cycles()
		}
	}
	eng.Flush(res.Cycles)
	res.Traffic = *eng.Traffic()
	res.Counter = *eng.CounterStats()
	res.Hash = *eng.HashStats()
	res.MAC = *eng.MACStats()
	return res
}
