package integrity

import (
	"errors"
	"fmt"

	"tnpu/internal/dram"
	"tnpu/internal/secmem"
)

// ErrTreeIntegrity is returned when a counter line or tree node fails
// verification against its parent — a tampered or replayed counter.
var ErrTreeIntegrity = errors.New("integrity: counter tree verification failed")

// NodeError is the typed verification failure of one tree node. It
// matches both ErrTreeIntegrity and secmem.ErrIntegrity under errors.Is,
// so callers that only care about "was tampering detected" can test a
// single sentinel across both protection schemes.
type NodeError struct {
	// Level is the tree level of the failing node (0 = counter lines).
	Level int
	// Index is the node index within its level.
	Index uint64
}

// Error renders the failure with its node coordinates.
func (e *NodeError) Error() string {
	return fmt.Sprintf("%v: node level %d index %d", ErrTreeIntegrity, e.Level, e.Index)
}

// Is matches the tree sentinel and the generic integrity sentinel.
func (e *NodeError) Is(target error) bool {
	return target == ErrTreeIntegrity || target == secmem.ErrIntegrity
}

// CounterTree is the functional SC-64 counter integrity tree. Level 0
// holds the per-block encryption counters; each higher level holds split
// counters versioning the nodes below; the root lives on-chip and is
// implicitly trusted. Every DRAM-resident node carries a MAC computed over
// (packed node content, node address, parent counter), so replaying a
// stale node/MAC pair fails because the parent counter has moved on.
//
//tnpu:per-goroutine
type CounterTree struct {
	geo    Geometry
	macEng *secmem.MACEngine
	// levels[L][i] are DRAM-resident nodes; macs mirrors them.
	levels [][]SplitCounterLine
	macs   [][][secmem.MACBytes]byte
	root   SplitCounterLine // on-chip, not attackable

	// CounterIncrements and OverflowReencrypts count update work for
	// tests and the timing model's overflow accounting.
	CounterIncrements  uint64
	OverflowReencrypts uint64
}

// NewCounterTree builds a zeroed tree over dataBytes using macKey for node
// MACs. All counters start at zero with valid MACs.
func NewCounterTree(dataBytes uint64, macKey []byte) *CounterTree {
	geo := NewGeometry(dataBytes)
	t := &CounterTree{geo: geo, macEng: secmem.NewMACEngine(macKey)}
	t.levels = make([][]SplitCounterLine, geo.Levels())
	t.macs = make([][][secmem.MACBytes]byte, geo.Levels())
	for l := 0; l < geo.Levels(); l++ {
		n := geo.NodesAt(l)
		t.levels[l] = make([]SplitCounterLine, n)
		t.macs[l] = make([][secmem.MACBytes]byte, n)
	}
	for l := 0; l < geo.Levels(); l++ {
		for i := range t.levels[l] {
			t.refreshMAC(l, uint64(i))
		}
	}
	return t
}

// Geometry exposes the tree shape.
func (t *CounterTree) Geometry() Geometry { return t.geo }

// parentCounter returns the current counter versioning node (level, idx).
func (t *CounterTree) parentCounter(level int, idx uint64) uint64 {
	pIdx, slot := t.geo.Parent(idx)
	if level+1 >= t.geo.Levels() {
		return t.root.Counter(slot)
	}
	return t.levels[level+1][pIdx].Counter(slot)
}

// refreshMAC recomputes the stored MAC of node (level, idx) from its
// current content and parent counter.
func (t *CounterTree) refreshMAC(level int, idx uint64) {
	raw := t.levels[level][idx].Encode()
	t.macs[level][idx] = t.macEng.MAC(raw[:], t.geo.NodeAddr(level, idx), t.parentCounter(level, idx))
}

// verifyNode checks one node's MAC against its parent counter.
func (t *CounterTree) verifyNode(level int, idx uint64) error {
	raw := t.levels[level][idx].Encode()
	if !t.macEng.Verify(raw[:], t.geo.NodeAddr(level, idx), t.parentCounter(level, idx), t.macs[level][idx]) {
		return &NodeError{Level: level, Index: idx}
	}
	return nil
}

// Counter verifies the chain from the covering counter line up to the root
// and returns the effective encryption counter for data block blockIdx.
func (t *CounterTree) Counter(blockIdx uint64) (uint64, error) {
	lineIdx, slot := t.geo.CounterIndex(blockIdx)
	if lineIdx >= t.geo.NodesAt(0) {
		return 0, fmt.Errorf("integrity: block %d outside protected region", blockIdx)
	}
	idx := lineIdx
	for l := 0; l < t.geo.Levels(); l++ {
		if err := t.verifyNode(l, idx); err != nil {
			return 0, err
		}
		idx, _ = t.geo.Parent(idx)
	}
	return t.levels[0][lineIdx].Counter(slot), nil
}

// Increment advances the counter of data block blockIdx, propagating
// version increments up the tree and refreshing node MACs. It returns the
// new counter and, when the leaf's minor overflowed, the indices of every
// data block covered by the leaf line — the caller must re-encrypt them.
func (t *CounterTree) Increment(blockIdx uint64) (counter uint64, reencrypt []uint64, err error) {
	lineIdx, slot := t.geo.CounterIndex(blockIdx)
	if lineIdx >= t.geo.NodesAt(0) {
		return 0, nil, fmt.Errorf("integrity: block %d outside protected region", blockIdx)
	}
	// The update path must start from verified state (hardware verifies
	// the chain on the read-modify-write of the counter).
	if _, err := t.Counter(blockIdx); err != nil {
		return 0, nil, err
	}
	t.CounterIncrements++

	counter, overflowed := t.levels[0][lineIdx].Increment(slot)
	if overflowed {
		t.OverflowReencrypts++
		base := lineIdx * Arity
		maxBlock := (t.geo.DataBytes() + dram.BlockBytes - 1) / dram.BlockBytes
		for s := uint64(0); s < Arity && base+s < maxBlock; s++ {
			reencrypt = append(reencrypt, base+s)
		}
	}

	// Propagate: each ancestor's slot counter increments (the child node
	// changed), then the child's MAC is refreshed under the new counter.
	idx := lineIdx
	for l := 0; l < t.geo.Levels(); l++ {
		pIdx, pSlot := t.geo.Parent(idx)
		var parentOverflow bool
		if l+1 >= t.geo.Levels() {
			_, parentOverflow = t.root.Increment(pSlot)
		} else {
			_, parentOverflow = t.levels[l+1][pIdx].Increment(pSlot)
		}
		if parentOverflow {
			// Every sibling's MAC was keyed by a minor that just reset:
			// recompute them all (the hardware re-MACs the covered nodes).
			first := pIdx * Arity
			for s := uint64(0); s < Arity && first+s < t.geo.NodesAt(l); s++ {
				t.refreshMAC(l, first+s)
			}
		} else {
			t.refreshMAC(l, idx)
		}
		idx = pIdx
	}
	return counter, reencrypt, nil
}

// --- Physical-attacker surface ---

// SnapshotNode captures a node's packed content and MAC as visible in DRAM.
func (t *CounterTree) SnapshotNode(level int, idx uint64) (raw [NodeBytes]byte, mac [secmem.MACBytes]byte) {
	return t.levels[level][idx].Encode(), t.macs[level][idx]
}

// RestoreNode overwrites a node's DRAM content and MAC with a snapshot — a
// counter replay attack.
func (t *CounterTree) RestoreNode(level int, idx uint64, raw [NodeBytes]byte, mac [secmem.MACBytes]byte) {
	t.levels[level][idx] = DecodeSplitCounterLine(raw)
	t.macs[level][idx] = mac
}

// CorruptNode flips one bit of a node's packed content.
func (t *CounterTree) CorruptNode(level int, idx uint64, bit uint) {
	raw := t.levels[level][idx].Encode()
	raw[bit/8%NodeBytes] ^= 1 << (bit % 8)
	t.levels[level][idx] = DecodeSplitCounterLine(raw)
}
