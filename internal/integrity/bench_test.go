package integrity

import "testing"

// Micro-benchmarks of the functional counter tree: the verification and
// update work a software MEE equivalent performs per block.

func BenchmarkTreeVerify(b *testing.B) {
	tr := NewCounterTree(16<<20, macKey)
	for i := 0; i < b.N; i++ {
		if _, err := tr.Counter(uint64(i) % 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeIncrement(b *testing.B) {
	tr := NewCounterTree(16<<20, macKey)
	for i := 0; i < b.N; i++ {
		if _, _, err := tr.Increment(uint64(i) % 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeMemoryWriteRead(b *testing.B) {
	m, err := NewTreeMemory(1<<20, encKey, macKey)
	if err != nil {
		b.Fatal(err)
	}
	block := make([]byte, 64)
	b.SetBytes(128)
	for i := 0; i < b.N; i++ {
		addr := uint64(i%512) * 64
		if err := m.WriteBlock(addr, block); err != nil {
			b.Fatal(err)
		}
		if _, err := m.ReadBlock(addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSplitCounterEncode(b *testing.B) {
	var l SplitCounterLine
	l.Major = 42
	for i := range l.Minors {
		l.Minors[i] = uint8(i)
	}
	for i := 0; i < b.N; i++ {
		raw := l.Encode()
		l = DecodeSplitCounterLine(raw)
	}
}
