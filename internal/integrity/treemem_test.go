package integrity

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"tnpu/internal/secmem"
)

var encKey = []byte("0123456789abcdef")

func newTreeMem(t *testing.T, size uint64) *TreeMemory {
	t.Helper()
	m, err := NewTreeMemory(size, encKey, macKey)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func block(seed byte) []byte {
	b := make([]byte, 64)
	for i := range b {
		b[i] = seed ^ byte(i)
	}
	return b
}

// mustWrite is test setup: a write failure here is a harness bug, not
// the property under test.
func mustWrite(t *testing.T, m *TreeMemory, addr uint64, b []byte) {
	t.Helper()
	if err := m.WriteBlock(addr, b); err != nil {
		t.Fatal(err)
	}
}

func TestTreeMemRoundTrip(t *testing.T) {
	m := newTreeMem(t, 1<<20)
	pt := block(0x5a)
	if err := m.WriteBlock(0x400, pt); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadBlock(0x400)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("round trip mismatch")
	}
}

func TestTreeMemOverwriteChangesCiphertext(t *testing.T) {
	m := newTreeMem(t, 1<<20)
	pt := block(1)
	mustWrite(t, m, 0, pt)
	ct1, _, _ := m.SnapshotBlock(0)
	mustWrite(t, m, 0, pt) // same plaintext, counter advanced
	ct2, _, _ := m.SnapshotBlock(0)
	if ct1 == ct2 {
		t.Fatal("counter-mode rewrite of same plaintext must change ciphertext")
	}
}

func TestTreeMemTamperDetected(t *testing.T) {
	m := newTreeMem(t, 1<<20)
	mustWrite(t, m, 0, block(1))
	if err := m.CorruptBlock(0, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadBlock(0); !errors.Is(err, secmem.ErrIntegrity) {
		t.Fatalf("tamper undetected: %v", err)
	}
}

func TestTreeMemReplayDetected(t *testing.T) {
	m := newTreeMem(t, 1<<20)
	mustWrite(t, m, 0, block(1))
	ct, mac, _ := m.SnapshotBlock(0)
	mustWrite(t, m, 0, block(2)) // counter now ahead
	m.RestoreBlock(0, ct, mac)
	if _, err := m.ReadBlock(0); !errors.Is(err, secmem.ErrIntegrity) {
		t.Fatalf("replay undetected: %v", err)
	}
}

func TestTreeMemCounterReplayDetected(t *testing.T) {
	// Full replay: stale data AND stale counter line. The tree must catch
	// the counter line against its parent.
	m := newTreeMem(t, 1<<20)
	mustWrite(t, m, 0, block(1))
	ctSnap, macSnap, _ := m.SnapshotBlock(0)
	rawCtr, macCtr := m.Tree().SnapshotNode(0, 0)
	mustWrite(t, m, 0, block(2))
	m.RestoreBlock(0, ctSnap, macSnap)
	m.Tree().RestoreNode(0, 0, rawCtr, macCtr)
	if _, err := m.ReadBlock(0); err == nil {
		t.Fatal("coordinated data+counter replay undetected")
	}
}

func TestTreeMemMissingBlock(t *testing.T) {
	m := newTreeMem(t, 1<<20)
	if _, err := m.ReadBlock(0x40); !errors.Is(err, secmem.ErrIntegrity) {
		t.Fatalf("absent block read: %v", err)
	}
}

func TestTreeMemBounds(t *testing.T) {
	m := newTreeMem(t, 4<<10)
	if err := m.WriteBlock(4<<10, block(0)); err == nil {
		t.Fatal("out-of-region write accepted")
	}
	if err := m.WriteBlock(3, block(0)); err == nil {
		t.Fatal("unaligned write accepted")
	}
	if _, err := m.ReadBlock(7); err == nil {
		t.Fatal("unaligned read accepted")
	}
}

func TestTreeMemOverflowReencryption(t *testing.T) {
	m := newTreeMem(t, 8<<10)
	// Populate two sibling blocks in the same counter line.
	mustWrite(t, m, 0*64, block(1))
	mustWrite(t, m, 1*64, block(2))
	// Drive slot 0 to minor overflow (starts at 1 after first write).
	for i := 0; i < minorLimit; i++ {
		if err := m.WriteBlock(0*64, block(1)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Tree().OverflowReencrypts == 0 {
		t.Fatal("expected an overflow event")
	}
	// Sibling must still decrypt and verify after re-encryption.
	got, err := m.ReadBlock(1 * 64)
	if err != nil {
		t.Fatalf("sibling unreadable after overflow: %v", err)
	}
	if !bytes.Equal(got, block(2)) {
		t.Fatal("sibling plaintext corrupted by overflow re-encryption")
	}
}

func TestTreeMemMultiBlock(t *testing.T) {
	m := newTreeMem(t, 1<<20)
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	if err := m.Write(0x1000, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0x1000, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-block mismatch")
	}
}

// Property: interleaved writes to random blocks always read back correctly
// and the tree stays verifiable.
func TestTreeMemProperty(t *testing.T) {
	m, err := NewTreeMemory(64<<10, encKey, macKey)
	if err != nil {
		t.Fatal(err)
	}
	latest := map[uint64]byte{}
	f := func(ops []struct {
		Block uint8
		Seed  byte
	}) bool {
		for _, op := range ops {
			addr := uint64(op.Block) * 64
			if err := m.WriteBlock(addr, block(op.Seed)); err != nil {
				return false
			}
			latest[addr] = op.Seed
		}
		// Pure verification: any order yields the same bool result.
		for addr, seed := range latest { //tnpu:orderfree
			got, err := m.ReadBlock(addr)
			if err != nil || !bytes.Equal(got, block(seed)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
