package integrity

import (
	"errors"
	"testing"
	"testing/quick"
)

var macKey = []byte("integrity-test-key-0123456789abc")

func TestSplitCounterBasics(t *testing.T) {
	var l SplitCounterLine
	if l.Counter(0) != 0 {
		t.Fatal("fresh counter not zero")
	}
	c, over := l.Increment(3)
	if c != 1 || over {
		t.Fatalf("first increment = %d, overflow=%v", c, over)
	}
	if l.Counter(3) != 1 || l.Counter(2) != 0 {
		t.Fatal("increment leaked to other slot")
	}
}

func TestSplitCounterOverflow(t *testing.T) {
	var l SplitCounterLine
	l.Increment(5) // slot 5 = 1, to check reset
	var over bool
	var c uint64
	for i := 0; i < minorLimit; i++ {
		c, over = l.Increment(0)
	}
	if !over {
		t.Fatal("expected minor overflow after 128 increments")
	}
	// Major bumped to 1, minors reset: counter = 1<<7.
	if c != minorLimit {
		t.Fatalf("post-overflow counter = %d, want %d", c, minorLimit)
	}
	if l.Counter(5) != minorLimit {
		t.Fatal("sibling minor must reset on overflow (shares new major)")
	}
	// Monotonicity: post-overflow counter exceeds all pre-overflow values.
	if l.Counter(0) <= minorLimit-1 {
		t.Fatal("counter went backwards across overflow")
	}
}

func TestSplitCounterEncodeDecodeRoundTrip(t *testing.T) {
	f := func(major uint64, minors [Arity]uint8) bool {
		var l SplitCounterLine
		l.Major = major
		for i, m := range minors {
			l.Minors[i] = m % minorLimit
		}
		got := DecodeSplitCounterLine(l.Encode())
		return got == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSplitCounterSlotRangePanics(t *testing.T) {
	var l SplitCounterLine
	for _, fn := range []func(){
		func() { l.Counter(-1) },
		func() { l.Counter(Arity) },
		func() { l.Increment(Arity) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGeometryLevels(t *testing.T) {
	cases := []struct {
		dataBytes uint64
		levels    int
		l0        uint64
	}{
		{4 << 10, 1, 1},       // 4KB: 64 blocks -> 1 counter line
		{256 << 10, 1, 64},    // 256KB: 64 lines -> root covers them? 64 lines -> next level 1 => levels=1
		{16 << 20, 2, 4096},   // 16MB: 4096 lines, 64 L1, root
		{75 << 20, 3, 19200},  // ~75MB footprint like tf
		{128 << 20, 3, 32768}, // SGX-like PRM
	}
	for _, c := range cases {
		g := NewGeometry(c.dataBytes)
		if g.Levels() != c.levels {
			t.Errorf("geometry(%d): levels = %d, want %d", c.dataBytes, g.Levels(), c.levels)
		}
		if g.NodesAt(0) != c.l0 {
			t.Errorf("geometry(%d): L0 nodes = %d, want %d", c.dataBytes, g.NodesAt(0), c.l0)
		}
	}
}

func TestGeometryShrinksByArity(t *testing.T) {
	g := NewGeometry(64 << 20)
	for l := 1; l < g.Levels(); l++ {
		lo, hi := g.NodesAt(l), g.NodesAt(l-1)
		if lo != (hi+Arity-1)/Arity {
			t.Errorf("level %d has %d nodes, want ceil(%d/64)", l, lo, hi)
		}
	}
	if g.NodesAt(g.Levels()-1) > Arity {
		t.Error("top DRAM level must be coverable by the single on-chip root")
	}
}

func TestGeometryAddressesDisjoint(t *testing.T) {
	g := NewGeometry(16 << 20)
	seen := map[uint64]bool{}
	for l := 0; l < g.Levels(); l++ {
		for i := uint64(0); i < g.NodesAt(l); i += 7 {
			a := g.NodeAddr(l, i)
			if seen[a] {
				t.Fatalf("duplicate node address %#x", a)
			}
			seen[a] = true
		}
	}
	if MACAddr(0) == g.NodeAddr(0, 0) {
		t.Error("MAC region must not alias counter region")
	}
}

func TestMACAddrPacking(t *testing.T) {
	// 8 consecutive blocks share one 64B MAC line.
	line0 := MACAddr(0) / 64
	for b := uint64(1); b < 8; b++ {
		if MACAddr(b*64)/64 != line0 {
			t.Errorf("block %d not in first MAC line", b)
		}
	}
	if MACAddr(8*64)/64 == line0 {
		t.Error("block 8 should start a new MAC line")
	}
}

func TestTreeCounterIncrementAndVerify(t *testing.T) {
	tr := NewCounterTree(1<<20, macKey)
	c, err := tr.Counter(5)
	if err != nil || c != 0 {
		t.Fatalf("fresh counter = %d, %v", c, err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := tr.Increment(5); err != nil {
			t.Fatal(err)
		}
	}
	if c, err = tr.Counter(5); err != nil || c != 3 {
		t.Fatalf("counter after 3 increments = %d, %v", c, err)
	}
	// Neighbouring block in same line unaffected.
	if c, err = tr.Counter(6); err != nil || c != 0 {
		t.Fatalf("sibling counter = %d, %v, want 0", c, err)
	}
}

func TestTreeDetectsCounterTamper(t *testing.T) {
	tr := NewCounterTree(1<<20, macKey)
	if _, _, err := tr.Increment(0); err != nil {
		t.Fatal(err)
	}
	tr.CorruptNode(0, 0, 70) // flip a minor bit in the leaf line
	if _, err := tr.Counter(0); !errors.Is(err, ErrTreeIntegrity) {
		t.Fatalf("tampered counter must fail verification, got %v", err)
	}
}

func TestTreeDetectsCounterReplay(t *testing.T) {
	tr := NewCounterTree(1<<20, macKey)
	raw, mac := tr.SnapshotNode(0, 0)             // counters all zero, valid MAC
	if _, _, err := tr.Increment(0); err != nil { // advance; parent counter moves
		t.Fatal(err)
	}
	tr.RestoreNode(0, 0, raw, mac) // replay stale line + stale MAC
	if _, err := tr.Counter(0); !errors.Is(err, ErrTreeIntegrity) {
		t.Fatalf("replayed counter line must fail (parent counter advanced), got %v", err)
	}
}

func TestTreeDetectsInnerNodeReplay(t *testing.T) {
	tr := NewCounterTree(16<<20, macKey) // 2 levels in DRAM
	if tr.Geometry().Levels() < 2 {
		t.Fatal("test needs an inner level")
	}
	raw, mac := tr.SnapshotNode(1, 0)
	if _, _, err := tr.Increment(0); err != nil { // bumps L1 node 0 via propagation
		t.Fatal(err)
	}
	tr.RestoreNode(1, 0, raw, mac)
	if _, err := tr.Counter(0); !errors.Is(err, ErrTreeIntegrity) {
		t.Fatalf("replayed inner node must fail against root, got %v", err)
	}
}

func TestTreeOverflowReencryptList(t *testing.T) {
	tr := NewCounterTree(8<<10, macKey) // 128 blocks, 2 counter lines
	var reenc []uint64
	for i := 0; i < minorLimit; i++ {
		var err error
		_, reenc, err = tr.Increment(0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(reenc) != Arity {
		t.Fatalf("overflow must re-encrypt all %d covered blocks, got %d", Arity, len(reenc))
	}
	if tr.OverflowReencrypts != 1 {
		t.Fatalf("overflow count = %d", tr.OverflowReencrypts)
	}
	// Tree remains verifiable after overflow maintenance.
	if _, err := tr.Counter(0); err != nil {
		t.Fatalf("tree broken after overflow: %v", err)
	}
	if _, err := tr.Counter(63); err != nil {
		t.Fatalf("sibling verification broken after overflow: %v", err)
	}
}

func TestTreeOutOfRange(t *testing.T) {
	tr := NewCounterTree(4<<10, macKey)
	if _, err := tr.Counter(1 << 20); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	if _, _, err := tr.Increment(1 << 20); err == nil {
		t.Fatal("out-of-range increment accepted")
	}
}

// Property: any sequence of increments keeps the whole tree verifiable,
// and each block's counter equals its increment count (below overflow).
func TestTreeConsistencyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		tr := NewCounterTree(32<<10, macKey) // 512 blocks
		counts := map[uint64]uint64{}
		for _, op := range ops {
			b := uint64(op) % 512
			if _, _, err := tr.Increment(b); err != nil {
				return false
			}
			counts[b]++
		}
		// Pure verification: any order yields the same bool result.
		for b, want := range counts { //tnpu:orderfree
			if want >= minorLimit {
				continue // overflow changes the arithmetic; covered elsewhere
			}
			got, err := tr.Counter(b)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
