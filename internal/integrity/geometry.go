package integrity

import (
	"fmt"

	"tnpu/internal/dram"
)

// Metadata address space layout: counters, tree nodes, and MACs live in
// reserved physical regions (Fig. 10 shows a dedicated MAC region). The
// simulator places them in disjoint synthetic ranges so the metadata caches
// see realistic, non-aliasing addresses.
const (
	// CounterBase is the start of the counter/tree-node region. Level L,
	// node index i resides at CounterBase + L*LevelStride + i*NodeBytes.
	CounterBase uint64 = 1 << 40
	// LevelStride separates tree levels in the synthetic address space.
	LevelStride uint64 = 1 << 32
	// MACBase is the start of the per-block MAC region.
	MACBase uint64 = 1 << 44
)

// Geometry describes the counter-tree shape protecting a data region of a
// given size: how many counter lines (level 0) and how many tree levels
// are needed until a single node fits on-chip as the root.
type Geometry struct {
	dataBytes uint64
	arity     uint64
	// counts[L] is the number of 64B nodes at level L stored in DRAM.
	// Level 0 is the counter lines; the root (one node) is on-chip and
	// NOT included.
	counts []uint64
}

// NewGeometry builds the tree geometry over dataBytes of protected memory.
// One counter line covers Arity data blocks (64 x 64B = 4KB); each tree
// level above reduces the node count by Arity until one node remains,
// which is the on-chip root.
func NewGeometry(dataBytes uint64) Geometry {
	return NewGeometryWithArity(dataBytes, Arity)
}

// NewGeometryWithArity builds a tree with a custom fan-out (the SGX MEE
// uses arity 8; the paper's SC-64 uses 64 — an ablation axis).
func NewGeometryWithArity(dataBytes, arity uint64) Geometry {
	if dataBytes == 0 {
		panic("integrity: geometry over empty region")
	}
	if arity < 2 {
		panic("integrity: tree arity must be at least 2")
	}
	blocks := (dataBytes + dram.BlockBytes - 1) / dram.BlockBytes
	n := (blocks + arity - 1) / arity // counter lines
	g := Geometry{dataBytes: dataBytes, arity: arity}
	for n > 1 {
		g.counts = append(g.counts, n)
		n = (n + arity - 1) / arity
	}
	// When even the counter level is a single line, that line still lives
	// in DRAM and is verified against the on-chip root hash; keep one
	// level so the scheme always fetches counters from memory.
	if len(g.counts) == 0 {
		g.counts = []uint64{1}
	}
	return g
}

// DataBytes returns the protected region size.
func (g Geometry) DataBytes() uint64 { return g.dataBytes }

// Levels returns the number of DRAM-resident levels (root excluded).
//
//tnpu:pure
func (g Geometry) Levels() int { return len(g.counts) }

// NodesAt returns how many nodes level L holds.
func (g Geometry) NodesAt(level int) uint64 {
	if level < 0 || level >= len(g.counts) {
		panic(fmt.Sprintf("integrity: level %d out of range [0,%d)", level, len(g.counts)))
	}
	return g.counts[level]
}

// TotalNodes returns the total DRAM-resident metadata nodes.
func (g Geometry) TotalNodes() uint64 {
	var sum uint64
	for _, c := range g.counts {
		sum += c
	}
	return sum
}

// CounterIndex maps a data block index to its covering counter line (level
// 0 node index) and the slot within the line.
//
//tnpu:pure
func (g Geometry) CounterIndex(blockIdx uint64) (lineIdx uint64, slot int) {
	return blockIdx / g.arity, int(blockIdx % g.arity)
}

// Parent maps a node at (level, idx) to its parent node index at level+1.
// The parent of the top DRAM level is the on-chip root.
func (g Geometry) Parent(idx uint64) (parentIdx uint64, slot int) {
	return idx / g.arity, int(idx % g.arity)
}

// NodeAddr returns the synthetic DRAM address of a metadata node, used to
// index the counter/hash caches.
func (g Geometry) NodeAddr(level int, idx uint64) uint64 {
	if level < 0 || level >= len(g.counts) {
		panic(fmt.Sprintf("integrity: level %d out of range", level))
	}
	if idx >= g.counts[level] {
		panic(fmt.Sprintf("integrity: node %d out of range at level %d (max %d)", idx, level, g.counts[level]))
	}
	return CounterBase + uint64(level)*LevelStride + idx*NodeBytes
}

// MACAddr returns the synthetic address of the 8-byte MAC slot protecting
// the 64B data block at blockAddr. Eight MACs pack into one 64B MAC line,
// which is what the MAC cache caches.
func MACAddr(blockAddr uint64) uint64 {
	return MACBase + (blockAddr/dram.BlockBytes)*8
}
