package integrity

import "testing"

// FuzzSplitCounterCodec checks the 7-bit packing against arbitrary lines.
func FuzzSplitCounterCodec(f *testing.F) {
	f.Add(uint64(0), []byte{})
	f.Add(uint64(1<<50), []byte{1, 2, 3, 127, 126, 0, 64})
	f.Fuzz(func(t *testing.T, major uint64, minors []byte) {
		var l SplitCounterLine
		l.Major = major
		for i := 0; i < len(minors) && i < Arity; i++ {
			l.Minors[i] = minors[i] % (1 << 7)
		}
		if got := DecodeSplitCounterLine(l.Encode()); got != l {
			t.Fatalf("codec round trip: %+v != %+v", got, l)
		}
	})
}

// FuzzTreeIncrementSequences applies arbitrary increment sequences and
// requires the whole tree to stay verifiable.
func FuzzTreeIncrementSequences(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 300 {
			ops = ops[:300]
		}
		tr := NewCounterTree(16<<10, macKey) // 256 blocks
		for _, op := range ops {
			if _, _, err := tr.Increment(uint64(op)); err != nil {
				t.Fatalf("increment: %v", err)
			}
		}
		for b := uint64(0); b < 256; b += 37 {
			if _, err := tr.Counter(b); err != nil {
				t.Fatalf("verify after sequence: %v", err)
			}
		}
	})
}
