// Package integrity implements the baseline tree-based protection that TNPU
// is compared against: SC-64 split counters (Yan et al., ISCA'06) and a
// 64-arity counter integrity tree whose root never leaves the chip
// (Fig. 1, Sec. II-B). The package provides both the functional structure
// (real counters, real node MACs, attackable storage) and the address
// geometry the timing model uses to drive the counter/hash caches.
package integrity

import (
	"encoding/binary"
	"fmt"
)

// Arity is the tree fan-out and split-counter group size (SC-64).
const Arity = 64

// NodeBytes is the size of one counter line / tree node.
const NodeBytes = 64

// minorBits is the width of each minor counter in SC-64: 64 minors * 7 bits
// + one 64-bit major counter = 512 bits = one 64B line.
const minorBits = 7

// minorLimit is the exclusive upper bound of a minor counter.
const minorLimit = 1 << minorBits

// SplitCounterLine is one 64-byte SC-64 line: a shared major counter plus
// 64 per-block 7-bit minor counters. The effective counter of slot i is
// major*128 + minor[i]. When any minor overflows, the major increments and
// every minor resets — forcing re-encryption of all covered blocks, the
// classic split-counter overflow cost.
type SplitCounterLine struct {
	Major  uint64
	Minors [Arity]uint8
}

// Counter returns the effective encryption counter for a slot.
func (l *SplitCounterLine) Counter(slot int) uint64 {
	if slot < 0 || slot >= Arity {
		panic(fmt.Sprintf("integrity: slot %d out of range", slot))
	}
	return l.Major<<minorBits | uint64(l.Minors[slot])
}

// Increment advances the slot's counter. It returns overflowed=true when
// the minor wrapped, which increments the major, resets all minors, and
// requires the caller to re-encrypt every block covered by this line.
func (l *SplitCounterLine) Increment(slot int) (counter uint64, overflowed bool) {
	if slot < 0 || slot >= Arity {
		panic(fmt.Sprintf("integrity: slot %d out of range", slot))
	}
	l.Minors[slot]++
	if l.Minors[slot] == minorLimit {
		l.Major++
		l.Minors = [Arity]uint8{}
		return l.Counter(slot), true
	}
	return l.Counter(slot), false
}

// Encode packs the line into its 64-byte DRAM representation: an 8-byte
// major followed by 64 seven-bit minors bit-packed into 56 bytes. The
// encoding is what tree MACs are computed over, so tampering any packed
// bit is detectable.
func (l *SplitCounterLine) Encode() [NodeBytes]byte {
	var out [NodeBytes]byte
	binary.LittleEndian.PutUint64(out[0:8], l.Major)
	bitOff := uint(64) // minors start after the major
	for _, m := range l.Minors {
		if m >= minorLimit {
			panic(fmt.Sprintf("integrity: minor %d exceeds %d bits", m, minorBits))
		}
		putBits(out[:], bitOff, uint64(m), minorBits)
		bitOff += minorBits
	}
	return out
}

// DecodeSplitCounterLine unpacks a 64-byte line.
func DecodeSplitCounterLine(raw [NodeBytes]byte) SplitCounterLine {
	var l SplitCounterLine
	l.Major = binary.LittleEndian.Uint64(raw[0:8])
	bitOff := uint(64)
	for i := range l.Minors {
		l.Minors[i] = uint8(getBits(raw[:], bitOff, minorBits))
		bitOff += minorBits
	}
	return l
}

// putBits writes the low width bits of v at bit offset off (little-endian
// bit order within the byte stream).
func putBits(buf []byte, off uint, v uint64, width uint) {
	for i := uint(0); i < width; i++ {
		bit := (v >> i) & 1
		idx := off + i
		if bit != 0 {
			buf[idx/8] |= 1 << (idx % 8)
		} else {
			buf[idx/8] &^= 1 << (idx % 8)
		}
	}
}

// getBits reads width bits at bit offset off.
func getBits(buf []byte, off, width uint) uint64 {
	var v uint64
	for i := uint(0); i < width; i++ {
		idx := off + i
		if buf[idx/8]&(1<<(idx%8)) != 0 {
			v |= 1 << i
		}
	}
	return v
}
