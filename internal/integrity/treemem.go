package integrity

import (
	"fmt"

	"tnpu/internal/dram"
	"tnpu/internal/secmem"
)

// TreeMemory is the functional model of the baseline tree-protected DRAM:
// counter-mode encryption with SC-64 counters, a counter integrity tree for
// freshness, and an 8-byte MAC per data block keyed by the block's current
// counter. It is the hardware-managed scheme the paper's Baseline
// configuration models (Sec. III-B) — contrast with secmem.TreelessMemory,
// where the version comes from software instead of a counter tree. Like
// that type, it owns per-goroutine crypto engine state.
//
//tnpu:per-goroutine
type TreeMemory struct {
	tree   *CounterTree
	ctr    *secmem.CTREngine
	macEng *secmem.MACEngine
	blocks map[uint64][dram.BlockBytes]byte // ciphertext by block address
	macs   map[uint64][secmem.MACBytes]byte // data MACs by block address
	limit  uint64                           // protected region size
}

// NewTreeMemory creates a tree-protected region of dataBytes.
func NewTreeMemory(dataBytes uint64, encKey, macKey []byte) (*TreeMemory, error) {
	ctr, err := secmem.NewCTREngine(encKey)
	if err != nil {
		return nil, err
	}
	return &TreeMemory{
		tree:   NewCounterTree(dataBytes, macKey),
		ctr:    ctr,
		macEng: secmem.NewMACEngine(macKey),
		blocks: make(map[uint64][dram.BlockBytes]byte),
		macs:   make(map[uint64][secmem.MACBytes]byte),
		limit:  dataBytes,
	}, nil
}

// Tree exposes the underlying counter tree (for attacks in tests).
func (m *TreeMemory) Tree() *CounterTree { return m.tree }

func (m *TreeMemory) checkAddr(addr uint64) error {
	if addr%dram.BlockBytes != 0 {
		return fmt.Errorf("integrity: address %#x not block aligned", addr)
	}
	if addr >= m.limit {
		return fmt.Errorf("integrity: address %#x outside protected %d-byte region", addr, m.limit)
	}
	return nil
}

// WriteBlock increments the block's counter (verifying the tree), encrypts
// the plaintext under the new counter, and stores ciphertext + counter-keyed
// MAC. Split-counter overflow transparently re-encrypts sibling blocks.
func (m *TreeMemory) WriteBlock(addr uint64, plaintext []byte) error {
	if err := m.checkAddr(addr); err != nil {
		return err
	}
	if len(plaintext) != dram.BlockBytes {
		return fmt.Errorf("integrity: write must be one %dB block", dram.BlockBytes)
	}
	blockIdx := addr / dram.BlockBytes

	// Remember pre-increment counters of siblings for possible overflow
	// re-encryption: their ciphertexts were produced under the old values.
	lineIdx, _ := m.tree.Geometry().CounterIndex(blockIdx)
	oldLine := m.tree.levels[0][lineIdx]

	counter, reencrypt, err := m.tree.Increment(blockIdx)
	if err != nil {
		return err
	}
	for _, sib := range reencrypt {
		if sib == blockIdx {
			continue // about to be rewritten below
		}
		sibAddr := sib * dram.BlockBytes
		ct, ok := m.blocks[sibAddr]
		if !ok {
			continue
		}
		_, slot := m.tree.Geometry().CounterIndex(sib)
		oldCounter := oldLine.Counter(slot)
		pt := m.ctr.Apply(sibAddr, oldCounter, ct[:])
		newCounter := m.tree.levels[0][lineIdx].Counter(slot)
		var nct [dram.BlockBytes]byte
		copy(nct[:], m.ctr.Apply(sibAddr, newCounter, pt))
		m.blocks[sibAddr] = nct
		m.macs[sibAddr] = m.macEng.MAC(nct[:], sibAddr, newCounter)
	}

	var ct [dram.BlockBytes]byte
	copy(ct[:], m.ctr.Apply(addr, counter, plaintext))
	m.blocks[addr] = ct
	m.macs[addr] = m.macEng.MAC(ct[:], addr, counter)
	return nil
}

// ReadBlock verifies the counter chain and the block MAC, then decrypts.
func (m *TreeMemory) ReadBlock(addr uint64) ([]byte, error) {
	if err := m.checkAddr(addr); err != nil {
		return nil, err
	}
	blockIdx := addr / dram.BlockBytes
	ct, ok := m.blocks[addr]
	if !ok {
		return nil, &secmem.IntegrityError{Addr: addr, Reason: "missing block"}
	}
	counter, err := m.tree.Counter(blockIdx)
	if err != nil {
		return nil, err
	}
	if !m.macEng.Verify(ct[:], addr, counter, m.macs[addr]) {
		return nil, &secmem.IntegrityError{Addr: addr, Version: counter, Reason: "MAC mismatch"}
	}
	return m.ctr.Apply(addr, counter, ct[:]), nil
}

// Write stores a buffer block by block (zero-padding the tail).
func (m *TreeMemory) Write(addr uint64, data []byte) error {
	var block [dram.BlockBytes]byte
	for off := 0; off < len(data); off += dram.BlockBytes {
		n := copy(block[:], data[off:])
		for i := n; i < dram.BlockBytes; i++ {
			block[i] = 0
		}
		if err := m.WriteBlock(addr+uint64(off), block[:]); err != nil {
			return err
		}
	}
	return nil
}

// Read fetches size bytes with full verification.
func (m *TreeMemory) Read(addr uint64, size int) ([]byte, error) {
	out := make([]byte, 0, size)
	for off := 0; off < size; off += dram.BlockBytes {
		b, err := m.ReadBlock(addr + uint64(off))
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out[:size], nil
}

// --- Physical-attacker surface ---

// SnapshotBlock captures (ciphertext, MAC) of a data block.
func (m *TreeMemory) SnapshotBlock(addr uint64) (ct [dram.BlockBytes]byte, mac [secmem.MACBytes]byte, ok bool) {
	ct, ok = m.blocks[addr]
	return ct, m.macs[addr], ok
}

// RestoreBlock replays a captured (ciphertext, MAC) pair.
func (m *TreeMemory) RestoreBlock(addr uint64, ct [dram.BlockBytes]byte, mac [secmem.MACBytes]byte) {
	m.blocks[addr] = ct
	m.macs[addr] = mac
}

// CorruptBlock flips one ciphertext bit. Targeting an absent block
// returns secmem.ErrAbsentBlock.
func (m *TreeMemory) CorruptBlock(addr uint64, bit uint) error {
	ct, ok := m.blocks[addr]
	if !ok {
		return fmt.Errorf("%w: corrupt of %#x", secmem.ErrAbsentBlock, addr)
	}
	ct[bit/8%dram.BlockBytes] ^= 1 << (bit % 8)
	m.blocks[addr] = ct
	return nil
}

// CorruptMAC flips one bit of a data block's stored MAC.
func (m *TreeMemory) CorruptMAC(addr uint64, bit uint) error {
	mac, ok := m.macs[addr]
	if !ok {
		return fmt.Errorf("%w: corrupt-mac of %#x", secmem.ErrAbsentBlock, addr)
	}
	mac[bit/8%secmem.MACBytes] ^= 1 << (bit % 8)
	m.macs[addr] = mac
	return nil
}
