package systolic

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := (Array{Rows: 32, Cols: 32}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Array{Rows: 0, Cols: 32}).Validate(); err == nil {
		t.Error("zero rows accepted")
	}
}

func TestPEs(t *testing.T) {
	if (Array{Rows: 45, Cols: 45}).PEs() != 2025 {
		t.Error("Large NPU PE count wrong")
	}
}

func TestTileCyclesSingleFold(t *testing.T) {
	a := Array{Rows: 32, Cols: 32}
	// Tile fits in one pass: k + R + C - 2.
	if got := a.TileCycles(32, 100, 32); got != 100+32+32-2 {
		t.Errorf("single-fold cycles = %d, want %d", got, 162)
	}
	// Smaller-than-array tile costs the same pass.
	if got := a.TileCycles(1, 100, 1); got != 162 {
		t.Errorf("tiny tile cycles = %d, want 162", got)
	}
}

func TestTileCyclesFolds(t *testing.T) {
	a := Array{Rows: 32, Cols: 32}
	// 64x64 output = 4 folds.
	if got := a.TileCycles(64, 10, 64); got != 4*(10+62) {
		t.Errorf("4-fold cycles = %d, want %d", got, 4*72)
	}
	// 33 rows folds to 2.
	if got := a.TileCycles(33, 10, 32); got != 2*72 {
		t.Errorf("ragged fold cycles = %d, want %d", got, 2*72)
	}
}

func TestVectorCycles(t *testing.T) {
	a := Array{Rows: 32, Cols: 32}
	if got := a.VectorCycles(64); got != 2 {
		t.Errorf("VectorCycles(64) = %d, want 2", got)
	}
	if got := a.VectorCycles(1); got != 1 {
		t.Errorf("VectorCycles(1) = %d, want 1", got)
	}
}

func TestUtilizationBounds(t *testing.T) {
	a := Array{Rows: 32, Cols: 32}
	// Perfectly matched large-k tile approaches full utilization.
	u := a.Utilization(32, 4096, 32)
	if u < 0.95 || u > 1 {
		t.Errorf("matched utilization = %v", u)
	}
	// A 1x1 output tile wastes almost the whole array.
	if u := a.Utilization(1, 64, 1); u > 0.01 {
		t.Errorf("tiny tile utilization = %v, want <1%%", u)
	}
}

func TestPanicOnBadDims(t *testing.T) {
	a := Array{Rows: 32, Cols: 32}
	for _, fn := range []func(){
		func() { a.TileCycles(0, 1, 1) },
		func() { a.TileCycles(1, 0, 1) },
		func() { a.TileCycles(1, 1, -1) },
		func() { a.VectorCycles(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: cycles scale monotonically with each dimension and utilization
// stays in (0, 1].
func TestMonotoneProperty(t *testing.T) {
	a := Array{Rows: 16, Cols: 16}
	f := func(mr, kr, nr uint8) bool {
		m, k, n := int(mr%64)+1, int(kr%64)+1, int(nr%64)+1
		base := a.TileCycles(m, k, n)
		if a.TileCycles(m+1, k, n) < base || a.TileCycles(m, k+1, n) < base || a.TileCycles(m, k, n+1) < base {
			return false
		}
		u := a.Utilization(m, k, n)
		return u > 0 && u <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDataflowString(t *testing.T) {
	if OutputStationary.String() != "output-stationary" || WeightStationary.String() != "weight-stationary" {
		t.Error("dataflow names wrong")
	}
}

func TestWeightStationaryCycles(t *testing.T) {
	ws := Array{Rows: 32, Cols: 32, Flow: WeightStationary}
	// One pinned weight tile (k<=32, n<=32): m + fill/drain.
	if got := ws.TileCycles(100, 32, 32); got != 100+62 {
		t.Errorf("WS single fold = %d, want 162", got)
	}
	// Deep reduction folds over k.
	if got := ws.TileCycles(100, 64, 32); got != 2*(100+62) {
		t.Errorf("WS k-fold = %d, want %d", got, 2*162)
	}
	// With tall m and shallow k, WS beats OS; with deep k and short m,
	// OS beats WS — the classic trade.
	os := Array{Rows: 32, Cols: 32}
	if ws.TileCycles(1024, 32, 32) >= os.TileCycles(1024, 32, 32) {
		t.Error("WS should win on tall-m shallow-k tiles")
	}
	if os.TileCycles(32, 1024, 32) >= ws.TileCycles(32, 1024, 32) {
		t.Error("OS should win on deep-k short-m tiles")
	}
}
