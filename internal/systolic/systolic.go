// Package systolic provides the analytical timing model for a systolic PE
// array executing GEMM tiles, in the SCALE-Sim tradition the paper's
// simulator builds on (Sec. V-A): an output-stationary dataflow where each
// array pass costs the reduction depth plus pipeline fill and drain.
package systolic

import "fmt"

// Dataflow selects the systolic mapping (SCALE-Sim's OS/WS axes).
type Dataflow uint8

const (
	// OutputStationary keeps partial sums in the PEs while inputs and
	// weights stream — the default mapping (used by the paper's two
	// commercial reference designs).
	OutputStationary Dataflow = iota
	// WeightStationary pins a weight tile in the array and streams the
	// activations — cheaper refills when reductions are deep but output
	// tiles must drain per pass.
	WeightStationary
)

// String names the dataflow.
func (d Dataflow) String() string {
	if d == WeightStationary {
		return "weight-stationary"
	}
	return "output-stationary"
}

// Array describes the PE grid (32x32 for Small NPU, 45x45 for Large).
type Array struct {
	Rows, Cols int
	// Flow selects the dataflow; the zero value is OutputStationary.
	Flow Dataflow
}

// Validate reports configuration errors.
func (a Array) Validate() error {
	if a.Rows <= 0 || a.Cols <= 0 {
		return fmt.Errorf("systolic: non-positive array %dx%d", a.Rows, a.Cols)
	}
	return nil
}

// PEs returns the processing-element count.
func (a Array) PEs() int { return a.Rows * a.Cols }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// TileCycles returns the cycles to compute an m×n output tile with
// reduction depth k on the array.
//
// Output-stationary: the tile folds into ceil(m/Rows)*ceil(n/Cols) array
// passes, each costing k (streaming the reduction) plus Rows+Cols-2
// fill/drain cycles.
//
// Weight-stationary: the weight tile folds into ceil(k/Rows)*ceil(n/Cols)
// pinned configurations, each streaming the m activation rows plus the
// same fill/drain.
func (a Array) TileCycles(m, k, n int) uint64 {
	if m <= 0 || k <= 0 || n <= 0 {
		panic(fmt.Sprintf("systolic: non-positive GEMM tile %dx%dx%d", m, k, n))
	}
	fillDrain := uint64(a.Rows + a.Cols - 2)
	if a.Flow == WeightStationary {
		folds := uint64(ceilDiv(k, a.Rows)) * uint64(ceilDiv(n, a.Cols))
		return folds * (uint64(m) + fillDrain)
	}
	folds := uint64(ceilDiv(m, a.Rows)) * uint64(ceilDiv(n, a.Cols))
	return folds * (uint64(k) + fillDrain)
}

// VectorCycles returns cycles for an element-wise pass over elems elements
// using one array row as a vector unit.
func (a Array) VectorCycles(elems int) uint64 {
	if elems <= 0 {
		panic(fmt.Sprintf("systolic: non-positive vector op %d", elems))
	}
	return uint64(ceilDiv(elems, a.Cols))
}

// Utilization returns the fraction of PE-cycles doing useful MACs for an
// m×k×n tile: useful work m*k*n over PEs*TileCycles.
func (a Array) Utilization(m, k, n int) float64 {
	cycles := a.TileCycles(m, k, n)
	return float64(uint64(m)*uint64(k)*uint64(n)) / (float64(a.PEs()) * float64(cycles))
}
