package attack

import (
	"fmt"

	"tnpu/internal/dram"
	"tnpu/internal/integrity"
	"tnpu/internal/memprot"
	"tnpu/internal/secmem"
)

// Blob is one block's externally visible DRAM state — whatever a bus
// snooper can capture and later replay: stored data (ciphertext for
// encrypted schemes, plaintext for unsecure) plus the block MAC where the
// scheme keeps one.
type Blob struct {
	Data [dram.BlockBytes]byte
	MAC  [secmem.MACBytes]byte
}

// Memory is the scheme-generic functional block memory the harness
// attacks. The first three methods are the victim's own access path; the
// rest are the physical attacker surface. Write versions are supplied by
// the caller (the software's version bookkeeping); schemes that track
// freshness in hardware ignore them.
//
// Attacker operations that target a scheme surface the scheme does not
// have (a MAC flip against unsecure DRAM, a freshness rollback where no
// freshness metadata exists) succeed as no-ops: the physical attack
// "lands" on bits that do not exist, which is exactly why its effect is
// None. Operations on absent blocks return secmem.ErrAbsentBlock.
type Memory interface {
	Scheme() memprot.Scheme
	WriteBlock(addr uint64, plaintext []byte, version uint64) error
	ReadBlock(addr, version uint64) ([]byte, error)

	// Snapshot captures a block's bus-visible state; ok reports presence.
	Snapshot(addr uint64) (b Blob, ok bool)
	// Restore replays a captured snapshot over the block.
	Restore(addr uint64, b Blob)
	// Splice copies the bus-visible state of src over dst.
	Splice(src, dst uint64) error
	// CorruptData flips one bit of the block's stored data.
	CorruptData(addr uint64, bit uint) error
	// CorruptMAC flips one bit of the block's stored MAC.
	CorruptMAC(addr uint64, bit uint) error
	// CorruptFreshness flips one bit of the scheme's freshness metadata
	// covering the block (version entry or counter line).
	CorruptFreshness(addr uint64, bit uint) error
	// RollbackFreshness rolls the freshness metadata covering the block
	// back to its state before the most recent write.
	RollbackFreshness(addr uint64) error
}

// TestKeys returns deterministic key material for campaigns: a 32-byte
// master encryption key and a 16-byte MAC key. Real deployments provision
// keys at attestation; the harness only needs them fixed and distinct.
func TestKeys() (encKey, macKey []byte) {
	encKey = make([]byte, 32)
	for i := range encKey {
		encKey[i] = byte(0xA0 + i)
	}
	macKey = make([]byte, 16)
	for i := range macKey {
		macKey[i] = byte(0x5C ^ i*7)
	}
	return encKey, macKey
}

// NewMemory builds the functional protected memory for a scheme over a
// dataBytes region. encKey must be 32 bytes (XTS schemes use all of it,
// counter-mode uses the first 16); macKey keys block and node MACs.
func NewMemory(s memprot.Scheme, dataBytes uint64, encKey, macKey []byte) (Memory, error) {
	if len(encKey) != 32 {
		return nil, fmt.Errorf("attack: enc key must be 32 bytes, got %d", len(encKey))
	}
	switch s {
	case memprot.Unsecure:
		return &plainMem{blocks: make(map[uint64][dram.BlockBytes]byte)}, nil
	case memprot.EncryptOnly:
		xts, err := secmem.NewXTSEngine(encKey)
		if err != nil {
			return nil, err
		}
		return &xtsMem{xts: xts, blocks: make(map[uint64][dram.BlockBytes]byte)}, nil
	case memprot.Baseline:
		m, err := integrity.NewTreeMemory(dataBytes, encKey[:16], macKey)
		if err != nil {
			return nil, err
		}
		return &treeMem{m: m, prevLeaf: make(map[uint64]leafSnap)}, nil
	case memprot.TreeLess:
		m, err := secmem.NewTreelessMemory(encKey, macKey)
		if err != nil {
			return nil, err
		}
		return &treelessMem{
			m:        m,
			last:     make(map[uint64]uint64),
			override: make(map[uint64]uint64),
		}, nil
	}
	return nil, fmt.Errorf("attack: unknown scheme %v", s)
}

func absent(op string, addr uint64) error {
	return fmt.Errorf("%w: %s of %#x", secmem.ErrAbsentBlock, op, addr)
}

// --- Tree-less TNPU adapter -------------------------------------------

// treelessMem adapts secmem.TreelessMemory. Freshness lives in the
// software version table (fully protected region, Sec. IV-C); the
// override map models a tampered/rolled-back table entry: once set, reads
// of the block verify against the overridden version instead of the one
// the software supplies, and the version-keyed MAC catches the mismatch.
//
// Owns its protected memory: one adapter per campaign cell/goroutine.
//
//tnpu:per-goroutine
type treelessMem struct {
	m        *secmem.TreelessMemory
	last     map[uint64]uint64 // last written version per block
	override map[uint64]uint64 // tampered version-table entries
}

func (t *treelessMem) Scheme() memprot.Scheme { return memprot.TreeLess }

func (t *treelessMem) WriteBlock(addr uint64, plaintext []byte, version uint64) error {
	t.m.WriteBlock(addr, plaintext, version)
	t.last[addr] = version
	// The software rewrites the table entry on every version bump, so a
	// prior tamper of this entry does not outlive the next write.
	delete(t.override, addr)
	return nil
}

func (t *treelessMem) ReadBlock(addr, version uint64) ([]byte, error) {
	if ov, ok := t.override[addr]; ok {
		version = ov
	}
	return t.m.ReadBlock(addr, version)
}

func (t *treelessMem) Snapshot(addr uint64) (Blob, bool) {
	ct, mac, ok := t.m.Snapshot(addr)
	return Blob{Data: ct, MAC: mac}, ok
}

func (t *treelessMem) Restore(addr uint64, b Blob) { t.m.Restore(addr, b.Data, b.MAC) }

func (t *treelessMem) Splice(src, dst uint64) error { return t.m.Relocate(src, dst) }

func (t *treelessMem) CorruptData(addr uint64, bit uint) error { return t.m.Corrupt(addr, bit) }

func (t *treelessMem) CorruptMAC(addr uint64, bit uint) error { return t.m.CorruptMAC(addr, bit) }

func (t *treelessMem) CorruptFreshness(addr uint64, bit uint) error {
	v, ok := t.last[addr]
	if !ok {
		return absent("corrupt-freshness", addr)
	}
	t.override[addr] = v ^ 1<<(bit%64)
	return nil
}

func (t *treelessMem) RollbackFreshness(addr uint64) error {
	v, ok := t.last[addr]
	if !ok {
		return absent("rollback", addr)
	}
	t.override[addr] = v - 1
	return nil
}

// --- Tree-based Baseline adapter --------------------------------------

// leafSnap is a counter line's bus-visible state before the most recent
// write through it — what a snooper replays to roll freshness back.
type leafSnap struct {
	raw [integrity.NodeBytes]byte
	mac [secmem.MACBytes]byte
}

// treeMem adapts integrity.TreeMemory. Freshness is the hardware counter
// tree: rollback replays a stale counter line (its MAC is keyed by the
// parent counter, which has since advanced), and freshness tampering
// flips a bit of the line's fully packed SC-64 encoding.
//
// Owns its protected memory: one adapter per campaign cell/goroutine.
//
//tnpu:per-goroutine
type treeMem struct {
	m        *integrity.TreeMemory
	prevLeaf map[uint64]leafSnap // by level-0 line index
}

func (t *treeMem) Scheme() memprot.Scheme { return memprot.Baseline }

func (t *treeMem) leafOf(addr uint64) uint64 {
	lineIdx, _ := t.m.Tree().Geometry().CounterIndex(addr / dram.BlockBytes)
	return lineIdx
}

func (t *treeMem) WriteBlock(addr uint64, plaintext []byte, version uint64) error {
	// The trace's version operand is software bookkeeping the baseline
	// hardware ignores — the counter tree tracks freshness itself.
	_ = version
	line := t.leafOf(addr)
	raw, mac := t.m.Tree().SnapshotNode(0, line)
	t.prevLeaf[line] = leafSnap{raw: raw, mac: mac}
	return t.m.WriteBlock(addr, plaintext)
}

func (t *treeMem) ReadBlock(addr, version uint64) ([]byte, error) {
	_ = version
	return t.m.ReadBlock(addr)
}

func (t *treeMem) Snapshot(addr uint64) (Blob, bool) {
	ct, mac, ok := t.m.SnapshotBlock(addr)
	return Blob{Data: ct, MAC: mac}, ok
}

func (t *treeMem) Restore(addr uint64, b Blob) { t.m.RestoreBlock(addr, b.Data, b.MAC) }

func (t *treeMem) Splice(src, dst uint64) error {
	b, ok := t.Snapshot(src)
	if !ok {
		return absent("splice", src)
	}
	t.Restore(dst, b)
	return nil
}

func (t *treeMem) CorruptData(addr uint64, bit uint) error { return t.m.CorruptBlock(addr, bit) }

func (t *treeMem) CorruptMAC(addr uint64, bit uint) error { return t.m.CorruptMAC(addr, bit) }

func (t *treeMem) CorruptFreshness(addr uint64, bit uint) error {
	if _, _, ok := t.m.SnapshotBlock(addr); !ok {
		return absent("corrupt-freshness", addr)
	}
	t.m.Tree().CorruptNode(0, t.leafOf(addr), bit)
	return nil
}

func (t *treeMem) RollbackFreshness(addr uint64) error {
	snap, ok := t.prevLeaf[t.leafOf(addr)]
	if !ok {
		return absent("rollback", addr)
	}
	t.m.Tree().RestoreNode(0, t.leafOf(addr), snap.raw, snap.mac)
	return nil
}

// --- Unsecure adapter --------------------------------------------------

// plainMem is unprotected DRAM: plaintext storage, no MAC, no freshness.
// Every data attack lands silently; metadata attacks have nothing to hit.
type plainMem struct {
	blocks map[uint64][dram.BlockBytes]byte
}

func (p *plainMem) Scheme() memprot.Scheme { return memprot.Unsecure }

func (p *plainMem) WriteBlock(addr uint64, plaintext []byte, version uint64) error {
	var b [dram.BlockBytes]byte
	copy(b[:], plaintext)
	p.blocks[addr] = b
	return nil
}

func (p *plainMem) ReadBlock(addr, version uint64) ([]byte, error) {
	b, ok := p.blocks[addr]
	if !ok {
		return nil, fmt.Errorf("attack: unsecure read of absent block %#x", addr)
	}
	out := make([]byte, dram.BlockBytes)
	copy(out, b[:])
	return out, nil
}

func (p *plainMem) Snapshot(addr uint64) (Blob, bool) {
	b, ok := p.blocks[addr]
	return Blob{Data: b}, ok
}

func (p *plainMem) Restore(addr uint64, b Blob) { p.blocks[addr] = b.Data }

func (p *plainMem) Splice(src, dst uint64) error {
	b, ok := p.blocks[src]
	if !ok {
		return absent("splice", src)
	}
	p.blocks[dst] = b
	return nil
}

func (p *plainMem) CorruptData(addr uint64, bit uint) error {
	b, ok := p.blocks[addr]
	if !ok {
		return absent("corrupt", addr)
	}
	b[bit/8%dram.BlockBytes] ^= 1 << (bit % 8)
	p.blocks[addr] = b
	return nil
}

func (p *plainMem) CorruptMAC(addr uint64, bit uint) error       { return nil }
func (p *plainMem) CorruptFreshness(addr uint64, bit uint) error { return nil }
func (p *plainMem) RollbackFreshness(addr uint64) error          { return nil }

// --- Encrypt-only adapter ----------------------------------------------

// xtsMem is XTS encryption without integrity: confidentiality holds, but
// tampered or replayed ciphertext decrypts to wrong plaintext that the
// consumer accepts — the same silent-corruption exposure as unsecure.
type xtsMem struct {
	xts    *secmem.XTSEngine
	blocks map[uint64][dram.BlockBytes]byte
}

func (x *xtsMem) Scheme() memprot.Scheme { return memprot.EncryptOnly }

func (x *xtsMem) WriteBlock(addr uint64, plaintext []byte, version uint64) error {
	var b [dram.BlockBytes]byte
	copy(b[:], x.xts.Encrypt(addr, plaintext))
	x.blocks[addr] = b
	return nil
}

func (x *xtsMem) ReadBlock(addr, version uint64) ([]byte, error) {
	b, ok := x.blocks[addr]
	if !ok {
		return nil, fmt.Errorf("attack: encrypt-only read of absent block %#x", addr)
	}
	return x.xts.Decrypt(addr, b[:]), nil
}

func (x *xtsMem) Snapshot(addr uint64) (Blob, bool) {
	b, ok := x.blocks[addr]
	return Blob{Data: b}, ok
}

func (x *xtsMem) Restore(addr uint64, b Blob) { x.blocks[addr] = b.Data }

func (x *xtsMem) Splice(src, dst uint64) error {
	b, ok := x.blocks[src]
	if !ok {
		return absent("splice", src)
	}
	x.blocks[dst] = b
	return nil
}

func (x *xtsMem) CorruptData(addr uint64, bit uint) error {
	b, ok := x.blocks[addr]
	if !ok {
		return absent("corrupt", addr)
	}
	b[bit/8%dram.BlockBytes] ^= 1 << (bit % 8)
	x.blocks[addr] = b
	return nil
}

func (x *xtsMem) CorruptMAC(addr uint64, bit uint) error       { return nil }
func (x *xtsMem) CorruptFreshness(addr uint64, bit uint) error { return nil }
func (x *xtsMem) RollbackFreshness(addr uint64) error          { return nil }
