package attack

import "fmt"

// Plan describes one fault to mount: what kind, against which victim
// block, and with what parameters.
type Plan struct {
	Kind Kind
	// Victim is the block address attacked.
	Victim uint64
	// Donor is the source block address for Splice (ignored otherwise).
	Donor uint64
	// Bit selects the flipped bit for the Tamper* kinds; adapters reduce
	// it modulo the targeted structure's width.
	Bit uint
}

// Injector is the fault-injecting memory wrapper: it implements Memory by
// delegation and, once armed, mounts its Plan exactly once — immediately
// before the next read of the victim block, the point where a bus
// interposer swaps the lines the controller is about to fetch. It also
// snoops writes to the victim so a Replay has a genuine stale
// (data, MAC) capture from the bus to play back.
//
// Not safe for concurrent use, matching the memories it wraps: each
// campaign cell owns one injector over one memory.
type Injector struct {
	Memory
	plan     Plan
	armed    bool
	fired    bool
	hasStale bool
	stale    Blob
}

// NewInjector wraps mem with a planned fault. The injector is created
// disarmed so the victim run can reach a healthy state first.
func NewInjector(mem Memory, plan Plan) *Injector {
	return &Injector{Memory: mem, plan: plan}
}

// Arm makes the next read of the victim trigger the injection.
func (j *Injector) Arm() { j.armed = true }

// Fired reports whether the planned fault was mounted.
func (j *Injector) Fired() bool { return j.fired }

// WriteBlock snoops victim writes: the block's bus-visible state just
// before each overwrite is kept as the stale capture a Replay restores.
func (j *Injector) WriteBlock(addr uint64, plaintext []byte, version uint64) error {
	if addr == j.plan.Victim {
		if b, ok := j.Memory.Snapshot(addr); ok {
			j.stale, j.hasStale = b, true
		}
	}
	return j.Memory.WriteBlock(addr, plaintext, version)
}

// ReadBlock mounts the planned fault before the first armed read of the
// victim, then lets the read proceed against the tampered state.
func (j *Injector) ReadBlock(addr, version uint64) ([]byte, error) {
	if j.armed && !j.fired && addr == j.plan.Victim {
		j.fired = true
		if err := j.inject(); err != nil {
			return nil, fmt.Errorf("attack: mounting %v on %#x: %w", j.plan.Kind, j.plan.Victim, err)
		}
	}
	return j.Memory.ReadBlock(addr, version)
}

// inject performs the planned fault against the wrapped memory.
func (j *Injector) inject() error {
	switch j.plan.Kind {
	case Replay:
		if !j.hasStale {
			return fmt.Errorf("no stale capture of victim (written fewer than twice)")
		}
		j.Memory.Restore(j.plan.Victim, j.stale)
		return nil
	case Splice:
		return j.Memory.Splice(j.plan.Donor, j.plan.Victim)
	case TamperData:
		return j.Memory.CorruptData(j.plan.Victim, j.plan.Bit)
	case TamperMAC:
		return j.Memory.CorruptMAC(j.plan.Victim, j.plan.Bit)
	case TamperFreshness:
		return j.Memory.CorruptFreshness(j.plan.Victim, j.plan.Bit)
	case Rollback:
		return j.Memory.RollbackFreshness(j.plan.Victim)
	}
	return fmt.Errorf("unknown attack kind %d", int(j.plan.Kind))
}
