package attack

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/isa"
	"tnpu/internal/memprot"
	"tnpu/internal/secmem"
	"tnpu/internal/stats"
)

// Outcome is one campaign cell: a (scheme, target, kind) triple with the
// effect the detection matrix demands and the effect the injection
// actually produced.
type Outcome struct {
	Scheme memprot.Scheme
	Target Target
	Kind   Kind
	Expect Effect
	Got    Effect
	// Victim is the attacked block address (for diagnostics).
	Victim uint64
	// Fired reports the injection actually triggered; a cell whose
	// victim was never read is a harness bug, not a detection result.
	Fired bool
	// Err records a harness-level failure (empty for valid cells).
	Err string
}

// Report is a completed campaign over one workload.
type Report struct {
	Model    string
	Outcomes []Outcome
}

// Campaign sweeps attack kind x victim traffic class x protection scheme
// over one compiled workload. Every cell runs on its own fresh memory and
// injector, so cells are independent and run concurrently.
type Campaign struct {
	// Schemes, Kinds, Targets select the swept axes; nil means all
	// (including the EncryptOnly bound, which shares Unsecure's row of
	// the detection matrix).
	Schemes []memprot.Scheme
	Kinds   []Kind
	Targets []Target
	// Workers bounds concurrent cells (0 = GOMAXPROCS).
	Workers int
	// Thorough runs each cell as a full two-request service flow: request
	// 0 executes every write, and request 1 verifies every read. The
	// default fast path seeds only the victim's history and verifies only
	// the victim's read — identical injection point and classification,
	// at a fraction of the crypto cost, which is what makes sweeping real
	// models affordable.
	Thorough bool
}

// victims maps each requested traffic class to its chosen victim block,
// plus the donor block splices copy from.
type victims struct {
	byTarget map[Target]uint64
	donor    uint64
}

// selectVictims picks, per requested traffic class, the earliest-read
// block of that class in the trace — the injection then fires (and the
// cell finishes) as early into request 1 as possible. The donor is the
// first parameter block that is no victim, so it provably holds valid
// data whenever a splice fires.
func selectVictims(prog *compiler.Program, targets []Target) (*victims, error) {
	if len(prog.Tensors) == 0 {
		return nil, fmt.Errorf("attack: program has no tensors")
	}
	input := prog.Tensors[0]
	output := prog.Tensors[len(prog.Tensors)-1]

	classOf := func(addr uint64) (Target, bool) {
		for _, ten := range prog.Tensors {
			if addr < ten.Addr || addr >= ten.End() {
				continue
			}
			switch {
			case ten.ID == input.ID:
				return Input, true
			case compiler.IsWeight(ten.Name):
				return Weights, true
			case ten.ID == output.ID:
				return Output, true
			}
			return Activation, true
		}
		return 0, false
	}

	want := make(map[Target]bool, len(targets))
	missing := 0
	for _, t := range targets {
		if !want[t] {
			want[t] = true
			missing++
		}
	}
	v := &victims{byTarget: make(map[Target]uint64, len(targets))}
	take := func(t Target, addr uint64) {
		if want[t] {
			if _, ok := v.byTarget[t]; !ok {
				v.byTarget[t] = addr
				missing--
			}
		}
	}
	// The output tensor is always read by the executor's readback phase,
	// even when no mvin consumes it.
	take(Output, output.Addr)

	written := make(map[uint64]bool)
	for i := range prog.Trace.Instrs {
		if missing == 0 {
			break
		}
		in := &prog.Trace.Instrs[i]
		switch in.Op {
		case isa.OpMvOut:
			for _, seg := range in.Segments {
				// The callback never fails, so neither can blocksOf.
				blocksOf(seg, func(addr uint64) error { //tnpu:errok
					written[addr] = true
					return nil
				})
			}
		case isa.OpMvIn:
			for _, seg := range in.Segments {
				// The callback never fails, so neither can blocksOf.
				blocksOf(seg, func(addr uint64) error { //tnpu:errok
					cls, ok := classOf(addr)
					if !ok {
						return nil
					}
					// An activation victim must demonstrably be produced
					// by an earlier mvout, so the attack hits the
					// producer-consumer path rather than a boundary block.
					if cls == Activation && !written[addr] {
						return nil
					}
					take(cls, addr)
					return nil
				})
			}
		}
	}
	for _, t := range targets {
		if _, ok := v.byTarget[t]; !ok {
			return nil, fmt.Errorf("attack: no %s block is read by the trace", t)
		}
	}

	isVictim := func(addr uint64) bool {
		for _, a := range v.byTarget {
			if a == addr {
				return true
			}
		}
		return false
	}
	for _, ten := range prog.Tensors {
		if !compiler.IsParameter(ten.Name) {
			continue
		}
		for blk := uint64(0); blk < ten.Blocks(); blk++ {
			if addr := ten.Addr + blk*dram.BlockBytes; !isVictim(addr) {
				v.donor = addr
				return v, nil
			}
		}
	}
	return nil, fmt.Errorf("attack: no donor block available")
}

// AvailableTargets returns the victim traffic classes the program's trace
// actually exposes. Not every workload has all four: embedding models
// like NCF consume their input as CPU-side gather indices, so no input
// block ever crosses the bus via mvin.
func AvailableTargets(prog *compiler.Program) []Target {
	var out []Target
	for _, t := range Targets() {
		if _, err := selectVictims(prog, []Target{t}); err == nil {
			out = append(out, t)
		}
	}
	return out
}

// runCell mounts one planned attack on a fresh memory and classifies the
// result.
func runCell(prog *compiler.Program, scheme memprot.Scheme, kind Kind, target Target, v *victims, bit uint, thorough bool) Outcome {
	out := Outcome{
		Scheme: scheme,
		Target: target,
		Kind:   kind,
		Expect: Expected(scheme, kind),
		Victim: v.byTarget[target],
	}
	fail := func(format string, args ...any) Outcome {
		out.Err = fmt.Sprintf(format, args...)
		return out
	}

	encKey, macKey := TestKeys()
	mem, err := NewMemory(scheme, prog.MemoryTop, encKey, macKey)
	if err != nil {
		return fail("memory: %v", err)
	}
	inj := NewInjector(mem, Plan{Kind: kind, Victim: out.Victim, Donor: v.donor, Bit: bit})
	x := NewExecutor(prog, inj)

	// Request 0 gives the snooper a write history to capture: the full
	// request in thorough mode, just the victim's slice of it otherwise.
	if thorough {
		if err := x.RunRequest(0, false); err != nil {
			return fail("request 0: %v", err)
		}
	} else {
		if err := x.Seed(0, out.Victim); err != nil {
			return fail("seed: %v", err)
		}
		victim, donor := out.Victim, v.donor
		x.ReadFilter = func(addr uint64) bool { return addr == victim }
		x.WriteFilter = func(addr uint64) bool { return addr == victim || addr == donor }
	}
	inj.Arm()
	err = x.RunRequest(1, true)
	out.Fired = inj.Fired()

	switch {
	case err == nil:
		out.Got = None
	case errors.Is(err, secmem.ErrIntegrity):
		out.Got = Detected
	case errors.Is(err, ErrSilentCorruption):
		out.Got = SilentCorruption
	default:
		return fail("request 1: %v", err)
	}
	if !out.Fired {
		return fail("injection never triggered (victim %#x unread)", out.Victim)
	}
	return out
}

// Run executes the full sweep over a compiled program. The model name
// only labels the report.
func (c Campaign) Run(model string, prog *compiler.Program) (*Report, error) {
	schemes := c.Schemes
	if schemes == nil {
		schemes = memprot.AllSchemes()
	}
	kinds := c.Kinds
	if kinds == nil {
		kinds = Kinds()
	}
	targets := c.Targets
	if targets == nil {
		targets = Targets()
	}
	v, err := selectVictims(prog, targets)
	if err != nil {
		return nil, err
	}

	type spec struct {
		scheme memprot.Scheme
		kind   Kind
		target Target
	}
	var specs []spec
	for _, s := range schemes {
		for _, t := range targets {
			for _, k := range kinds {
				specs = append(specs, spec{s, k, t})
			}
		}
	}

	rep := &Report{Model: model, Outcomes: make([]Outcome, len(specs))}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				s := specs[i]
				// Vary the flipped bit across cells so tampering is not
				// pinned to one byte of the 64B block / 8B MAC / packed
				// counter line.
				rep.Outcomes[i] = runCell(prog, s.scheme, s.kind, s.target, v, uint(17*i+5), c.Thorough)
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
	return rep, nil
}

// Stats aggregates per-scheme detection counters over the outcomes.
func (r *Report) Stats() map[memprot.Scheme]*stats.DetectionStats {
	out := make(map[memprot.Scheme]*stats.DetectionStats)
	for _, o := range r.Outcomes {
		d := out[o.Scheme]
		if d == nil {
			d = &stats.DetectionStats{}
			out[o.Scheme] = d
		}
		d.Injections++
		switch o.Got {
		case Detected:
			d.Detected++
		case SilentCorruption:
			d.Silent++
		default:
			d.Inert++
		}
	}
	return out
}

// Matrix checks every outcome against the paper's detection matrix and
// returns a joined error describing each violation (nil when the matrix
// holds exactly).
func (r *Report) Matrix() error {
	var errs []error
	for _, o := range r.Outcomes {
		switch {
		case o.Err != "":
			errs = append(errs, fmt.Errorf("%s: %s/%s/%s: harness: %s",
				r.Model, o.Scheme, o.Target, o.Kind, o.Err))
		case o.Got != o.Expect:
			errs = append(errs, fmt.Errorf("%s: %s/%s/%s: expected %s, got %s",
				r.Model, o.Scheme, o.Target, o.Kind, o.Expect, o.Got))
		}
	}
	return errors.Join(errs...)
}

// Table renders the outcome grid: one row per (scheme, kind), one column
// per victim traffic class.
func (r *Report) Table() string {
	targets := r.targets()
	header := []string{"scheme", "attack"}
	for _, t := range targets {
		header = append(header, t.String())
	}
	tb := stats.NewTable(header...)
	type rowKey struct {
		scheme memprot.Scheme
		kind   Kind
	}
	rows := make(map[rowKey]map[Target]Outcome)
	var order []rowKey
	for _, o := range r.Outcomes {
		k := rowKey{o.Scheme, o.Kind}
		if rows[k] == nil {
			rows[k] = make(map[Target]Outcome)
			order = append(order, k)
		}
		rows[k][o.Target] = o
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].scheme != order[j].scheme {
			return order[i].scheme < order[j].scheme
		}
		return order[i].kind < order[j].kind
	})
	for _, k := range order {
		cells := []string{k.scheme.String(), k.kind.String()}
		for _, t := range targets {
			o, ok := rows[k][t]
			switch {
			case !ok:
				cells = append(cells, "-")
			case o.Err != "":
				cells = append(cells, "ERROR")
			case o.Got != o.Expect:
				cells = append(cells, fmt.Sprintf("%s!=%s", o.Got, o.Expect))
			default:
				cells = append(cells, o.Got.String())
			}
		}
		tb.AddRow(cells...)
	}
	return tb.String()
}

// Summary renders per-scheme coverage lines.
func (r *Report) Summary() string {
	st := r.Stats()
	var schemes []memprot.Scheme
	for s := range st {
		schemes = append(schemes, s)
	}
	sort.Slice(schemes, func(i, j int) bool { return schemes[i] < schemes[j] })
	var b strings.Builder
	for _, s := range schemes {
		fmt.Fprintf(&b, "%-12s %s\n", s, st[s])
	}
	return b.String()
}

// targets returns the distinct victim classes present, in sweep order.
func (r *Report) targets() []Target {
	seen := make(map[Target]bool)
	var out []Target
	for _, o := range r.Outcomes {
		if !seen[o.Target] {
			seen[o.Target] = true
			out = append(out, o.Target)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
