package attack

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"tnpu/internal/compiler"
	"tnpu/internal/dram"
	"tnpu/internal/isa"
)

// ErrSilentCorruption marks a read that returned attacker-controlled
// content without any integrity violation — the NPU consumed corrupted
// data and nobody noticed. It is the expected (and damning) outcome for
// data attacks against the unprotected schemes, and a matrix violation
// for the protected ones.
var ErrSilentCorruption = errors.New("attack: corrupted data consumed undetected")

// Executor functionally drives a compiled workload through a Memory the
// way the e2e service does (Sec. V-D): each request re-initializes the
// parameter tensors, executes the trace's data movement, and reads the
// output tensor back. Requests use disjoint version and content-tag
// ranges, so every block's expected plaintext is deterministic per
// request — stale data from an earlier request can never pass the content
// check by accident, which is what makes silent corruption observable.
//
// A detection campaign runs request 0 write-only (populating DRAM with a
// history the attacker can snoop), arms the injector, then runs request 1
// with full read verification and classifies how the fault surfaced.
type Executor struct {
	prog *compiler.Program
	mem  Memory

	// ReadFilter, when non-nil, restricts which blocks verifying requests
	// actually fetch. Campaigns sweeping hundreds of cells point it at
	// the victim block: the victim's read still happens at its exact
	// trace position through the scheme's full verified path, but the
	// (already separately tested) clean reads of innocent blocks are
	// skipped, which is what makes a 100-cell sweep affordable.
	ReadFilter func(addr uint64) bool

	// WriteFilter, when non-nil, restricts which blocks are physically
	// written (version/tag bookkeeping still covers every block, so the
	// trace walk and the victim's write positions are unchanged). The
	// campaign fast path keeps just the victim and the splice donor,
	// cutting per-cell crypto from the whole model to a handful of
	// blocks. Cells verified through this path classify identically to
	// thorough cells — TestTinyModelFastMatchesThorough pins that.
	WriteFilter func(addr uint64) bool

	// written is the software's version bookkeeping: the version each
	// block was last MACed under.
	written map[uint64]uint64
	// tag is the writer id per block for the content check.
	tag map[uint64]uint64
}

// NewExecutor prepares an executor for one program over one memory.
func NewExecutor(prog *compiler.Program, mem Memory) *Executor {
	return &Executor{
		prog:    prog,
		mem:     mem,
		written: make(map[uint64]uint64),
		tag:     make(map[uint64]uint64),
	}
}

// versionOffset separates the version ranges of successive requests.
func versionOffset(req int) uint64 { return uint64(req) << 32 }

// Seed writes one block as request req would have, giving the block a
// genuine write history without the cost of running the whole request.
// Campaign fast paths seed just the victim in place of a full request 0:
// the injector still snoops a real pre-overwrite state when request 1
// rewrites the block, so replays play back authentic stale captures.
func (x *Executor) Seed(req int, addr uint64) error {
	off := versionOffset(req)
	return x.mem.WriteBlock(addr, blockPayload(addr, off), off+1)
}

// blocksOf enumerates the 64B-aligned blocks a segment covers.
func blocksOf(seg isa.Segment, fn func(addr uint64) error) error {
	first := seg.Addr &^ (dram.BlockBytes - 1)
	for addr := first; addr < seg.Addr+seg.Bytes; addr += dram.BlockBytes {
		if err := fn(addr); err != nil {
			return err
		}
	}
	return nil
}

// blockPayload is the deterministic plaintext for (block, writer): a tag
// domain distinct from the core executors' so cross-harness aliasing is
// impossible.
func blockPayload(addr, writer uint64) []byte {
	var b [dram.BlockBytes]byte
	binary.LittleEndian.PutUint64(b[0:8], addr^0xD1E5)
	binary.LittleEndian.PutUint64(b[8:16], writer)
	for i := 16; i < dram.BlockBytes; i++ {
		b[i] = byte(addr>>7) ^ byte(writer*13+uint64(i))
	}
	return b[:]
}

// RunRequest serves one inference request. With verify false only the
// write traffic runs (the request whose bus history the attacker snoops);
// with verify true every mvin and the output readback fetch and check
// their blocks, surfacing the injected fault.
func (x *Executor) RunRequest(req int, verify bool) error {
	off := versionOffset(req)

	// Parameter load: the service streams input and weights per request
	// under this request's version range.
	for _, ten := range x.prog.Tensors {
		if !compiler.IsParameter(ten.Name) {
			continue
		}
		for blk := uint64(0); blk < ten.Blocks(); blk++ {
			addr := ten.Addr + blk*dram.BlockBytes
			if err := x.write(addr, off, off+1); err != nil {
				return fmt.Errorf("init %s: %w", ten.Name, err)
			}
		}
	}

	// Trace data movement.
	for i := range x.prog.Trace.Instrs {
		in := &x.prog.Trace.Instrs[i]
		switch in.Op {
		case isa.OpMvOut:
			writer := off + uint64(i) + 1
			for _, seg := range in.Segments {
				if err := blocksOf(seg, func(addr uint64) error {
					return x.write(addr, writer, off+in.Version)
				}); err != nil {
					return fmt.Errorf("instr %d: %w", i, err)
				}
			}
		case isa.OpMvIn:
			if !verify {
				continue
			}
			for _, seg := range in.Segments {
				if err := blocksOf(seg, x.readCheck); err != nil {
					return fmt.Errorf("instr %d: %w", i, err)
				}
			}
		}
	}

	if !verify {
		return nil
	}
	// Output readback: the CPU fetches the result tensor.
	out := x.prog.Tensors[len(x.prog.Tensors)-1]
	for blk := uint64(0); blk < out.Blocks(); blk++ {
		if err := x.readCheck(out.Addr + blk*dram.BlockBytes); err != nil {
			return fmt.Errorf("output readback: %w", err)
		}
	}
	return nil
}

// write records the block's new version and writer tag, and performs the
// physical write unless the WriteFilter drops it.
func (x *Executor) write(addr, writer, version uint64) error {
	x.written[addr] = version
	x.tag[addr] = writer
	if x.WriteFilter != nil && !x.WriteFilter(addr) {
		return nil
	}
	return x.mem.WriteBlock(addr, blockPayload(addr, writer), version)
}

// readCheck fetches one block through the scheme's verified read path and
// compares the returned plaintext against the known writer tag. A content
// mismatch without an integrity error is silent corruption.
func (x *Executor) readCheck(addr uint64) error {
	if x.ReadFilter != nil && !x.ReadFilter(addr) {
		return nil
	}
	ver, ok := x.written[addr]
	if !ok {
		return fmt.Errorf("attack: read of never-written block %#x", addr)
	}
	data, err := x.mem.ReadBlock(addr, ver)
	if err != nil {
		return err
	}
	if want := blockPayload(addr, x.tag[addr]); !bytes.Equal(data, want) {
		return fmt.Errorf("%w: block %#x", ErrSilentCorruption, addr)
	}
	return nil
}
