// Package attack is the adversarial fault-injection harness: it mounts
// the paper's physical attacker model (Sec. II-E — a bus snooper who can
// replay, splice, and tamper with off-chip DRAM, the same threat model
// GuardNN and MGX define) against the functional protected memories and
// proves, per scheme, that the integrity machinery actually detects the
// tampering rather than merely costing cycles in the timing model.
//
// The pieces compose bottom-up:
//
//   - Memory is the scheme-generic functional block-memory interface with
//     an explicit attacker surface (snapshot/restore/splice/bit-flips/
//     freshness rollback). Adapters wrap the unsecure, encrypt-only,
//     tree-based (integrity.TreeMemory) and tree-less
//     (secmem.TreelessMemory) implementations.
//
//   - Injector is a fault-injecting wrapper implementing Memory: armed at
//     a chosen point of the run, it mounts one planned attack on a victim
//     block immediately before the next read of that block, exactly where
//     a bus interposer would strike.
//
//   - Executor drives a compiled e2e workload (init, NPU trace, output
//     readback — the Sec. V-D flow) through a Memory, request by request,
//     with deterministic content tags so silent corruption is observable.
//
//   - Campaign sweeps attack kind x victim traffic class x scheme over a
//     program and checks every outcome against the paper's detection
//     matrix: Baseline and TNPU must flag every injection as an integrity
//     violation; Unsecure (and EncryptOnly) must detect nothing.
package attack

import "tnpu/internal/memprot"

// Kind enumerates the injected fault types of the attacker model.
type Kind int

const (
	// Replay restores a stale (ciphertext, MAC) pair captured from an
	// earlier write to the same address — the freshness attack the
	// version numbers / counter tree exist to stop.
	Replay Kind = iota
	// Splice copies a currently valid block from a different address
	// over the victim — defeated by the address input of the MAC.
	Splice
	// TamperData flips one bit of the victim's stored data (ciphertext
	// for protected schemes, plaintext for unsecure).
	TamperData
	// TamperMAC flips one bit of the victim's stored MAC.
	TamperMAC
	// TamperFreshness flips one bit in the scheme's freshness metadata:
	// the victim's version-table entry (tree-less) or its counter line
	// (tree-based). Schemes without freshness metadata have no surface.
	TamperFreshness
	// Rollback rolls the scheme's freshness state for the victim back one
	// step: a stale version-table entry (tree-less) or a replayed counter
	// node (tree-based).
	Rollback
	numKinds
)

// Kinds lists every attack kind in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case Replay:
		return "replay"
	case Splice:
		return "splice"
	case TamperData:
		return "tamper-data"
	case TamperMAC:
		return "tamper-mac"
	case TamperFreshness:
		return "tamper-freshness"
	case Rollback:
		return "rollback"
	}
	return "kind(?)"
}

// Target selects the traffic class of the victim block within a workload.
type Target int

const (
	// Weights targets a model-parameter block streamed in at init.
	Weights Target = iota
	// Input targets an input-tensor block.
	Input
	// Activation targets an intermediate tensor block written by an
	// mvout and consumed by a later mvin.
	Activation
	// Output targets the result tensor the CPU reads back.
	Output
	numTargets
)

// Targets lists every victim traffic class in declaration order.
func Targets() []Target {
	out := make([]Target, numTargets)
	for i := range out {
		out[i] = Target(i)
	}
	return out
}

// String names the target class for reports.
func (t Target) String() string {
	switch t {
	case Weights:
		return "weights"
	case Input:
		return "input"
	case Activation:
		return "activation"
	case Output:
		return "output"
	}
	return "target(?)"
}

// Effect classifies what an injection did to the victim run.
type Effect int

const (
	// None: the fault had no observable consequence (the scheme has no
	// such metadata surface, e.g. a MAC flip against unprotected DRAM).
	None Effect = iota
	// SilentCorruption: the run consumed attacker-controlled data without
	// noticing — the failure mode integrity protection exists to prevent.
	SilentCorruption
	// Detected: the read surfaced a typed integrity violation.
	Detected
)

// String names the effect for reports.
func (e Effect) String() string {
	switch e {
	case None:
		return "none"
	case SilentCorruption:
		return "SILENT"
	case Detected:
		return "detected"
	}
	return "effect(?)"
}

// Expected is the paper's detection matrix: the effect each scheme must
// exhibit for each attack kind. Integrity-protected schemes detect every
// injection; unprotected schemes detect none — data attacks corrupt
// silently, while attacks on nonexistent metadata are inert.
func Expected(s memprot.Scheme, k Kind) Effect {
	switch s {
	case memprot.Baseline, memprot.TreeLess:
		return Detected
	}
	switch k {
	case Replay, Splice, TamperData:
		return SilentCorruption
	}
	return None
}
