package attack

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"tnpu/internal/compiler"
	"tnpu/internal/memprot"
	"tnpu/internal/model"
	"tnpu/internal/secmem"
	"tnpu/internal/spm"
	"tnpu/internal/systolic"
)

func testCompilerCfg() compiler.Config {
	return compiler.Config{Array: systolic.Array{Rows: 32, Cols: 32}, SPM: spm.SPM{CapacityBytes: 480 << 10}}
}

// tinyModel is a 3-layer synthetic workload small enough that the full
// 96-cell matrix (4 schemes x 4 targets x 6 kinds) runs in milliseconds,
// with every traffic class present: an input, per-layer weights, an
// activation produced by fc1 and consumed by fc2, and an output.
func tinyModel() *model.Model {
	m := &model.Model{
		Name:       "TinySynthetic",
		Short:      "tiny",
		InputBytes: 2048,
		Layers: []model.Layer{
			model.FC("fc1", 8, 64, 48, -1),
			model.FC("fc2", 8, 48, 32, 0),
			model.FC("fc3", 8, 32, 16, 1),
		},
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

func compileShort(t *testing.T, short string) *compiler.Program {
	t.Helper()
	m, err := model.ByShort(short)
	if err != nil {
		t.Fatal(err)
	}
	return compileModel(t, m)
}

func compileModel(t *testing.T, m *model.Model) *compiler.Program {
	t.Helper()
	prog, err := compiler.Compile(m, testCompilerCfg())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func checkReport(t *testing.T, rep *Report, wantCells int) {
	t.Helper()
	if err := rep.Matrix(); err != nil {
		t.Fatalf("detection matrix violated:\n%v\n\n%s", err, rep.Table())
	}
	if len(rep.Outcomes) != wantCells {
		t.Fatalf("expected %d cells, got %d", wantCells, len(rep.Outcomes))
	}
	for _, o := range rep.Outcomes {
		if !o.Fired {
			t.Fatalf("%s/%s/%s: injection never fired", o.Scheme, o.Target, o.Kind)
		}
	}
}

// TestTinyModelFullMatrixThorough runs every (scheme, target, kind) cell
// over the synthetic workload in thorough mode — full two-request service
// flow with every read verified — and requires the paper's detection
// matrix to hold exactly.
func TestTinyModelFullMatrixThorough(t *testing.T) {
	prog := compileModel(t, tinyModel())
	rep, err := Campaign{Workers: 4, Thorough: true}.Run("tiny", prog)
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, 4*4*6)

	st := rep.Stats()
	for _, s := range []memprot.Scheme{memprot.Baseline, memprot.TreeLess} {
		if c := st[s].Coverage(); c != 1 {
			t.Errorf("%s coverage = %v, want 1.0", s, c)
		}
	}
	for _, s := range []memprot.Scheme{memprot.Unsecure, memprot.EncryptOnly} {
		if d := st[s]; d.Detected != 0 || d.Silent != 3*4 || d.Inert != 3*4 {
			t.Errorf("%s stats = %+v, want 0 detected, 12 silent, 12 inert", s, d)
		}
	}
}

// TestTinyModelFastMatchesThorough proves the campaign fast path (seeded
// victim history, victim-only verification) classifies every cell exactly
// as the thorough two-request flow does.
func TestTinyModelFastMatchesThorough(t *testing.T) {
	prog := compileModel(t, tinyModel())
	fast, err := Campaign{Workers: 2}.Run("tiny", prog)
	if err != nil {
		t.Fatal(err)
	}
	thorough, err := Campaign{Workers: 2, Thorough: true}.Run("tiny", prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Outcomes) != len(thorough.Outcomes) {
		t.Fatalf("cell count mismatch: %d vs %d", len(fast.Outcomes), len(thorough.Outcomes))
	}
	for i := range fast.Outcomes {
		f, th := fast.Outcomes[i], thorough.Outcomes[i]
		if f.Got != th.Got {
			t.Errorf("%s/%s/%s: fast=%s thorough=%s", f.Scheme, f.Target, f.Kind, f.Got, th.Got)
		}
	}
}

// TestRealWorkloadsDetectionMatrix sweeps the full matrix over two real
// compiled models and a reduced (earliest-victim) sweep over a third, so
// the detection guarantees are demonstrated on genuine end-to-end traces,
// not just the synthetic workload.
func TestRealWorkloadsDetectionMatrix(t *testing.T) {
	for _, short := range []string{"df", "agz"} {
		prog := compileShort(t, short)
		rep, err := Campaign{Workers: 4}.Run(short, prog)
		if err != nil {
			t.Fatal(err)
		}
		checkReport(t, rep, 4*4*6)
		t.Logf("%s:\n%s", short, rep.Summary())
	}

	// Third workload: ncf's input is consumed as CPU-side gather indices
	// and never streamed through an mvin, so its victim classes are the
	// embedding tables (weights), activations, and the output.
	prog := compileShort(t, "ncf")
	rep, err := Campaign{
		Schemes: memprot.Schemes(),
		Targets: []Target{Weights, Activation, Output},
		Workers: 4,
	}.Run("ncf", prog)
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep, 3*3*6)
}

// TestCoordinatedRollbackOutsideThreatModel documents the boundary of the
// tree-less scheme's guarantee: an attacker who could roll back BOTH the
// data block and its version-table entry coherently would go undetected.
// The paper closes this by placing the version table in the fully
// protected (tree-backed) region, so the table half of the pair is not
// physically writable — the harness models that boundary, and this test
// pins down exactly what the version table's protection is load-bearing
// for.
func TestCoordinatedRollbackOutsideThreatModel(t *testing.T) {
	encKey, macKey := TestKeys()
	mem, err := NewMemory(memprot.TreeLess, 1<<16, encKey, macKey)
	if err != nil {
		t.Fatal(err)
	}
	const addr = 0x1000
	pt1 := blockPayload(addr, 1)
	if err := mem.WriteBlock(addr, pt1, 7); err != nil {
		t.Fatal(err)
	}
	stale, ok := mem.Snapshot(addr)
	if !ok {
		t.Fatal("no snapshot")
	}
	if err := mem.WriteBlock(addr, blockPayload(addr, 2), 8); err != nil {
		t.Fatal(err)
	}

	// Data-only rollback: detected, because the reader's version moved on.
	mem.Restore(addr, stale)
	if _, err := mem.ReadBlock(addr, 8); !errors.Is(err, secmem.ErrIntegrity) {
		t.Fatalf("data-only rollback: got %v, want integrity error", err)
	}

	// Coordinated rollback of data AND version: verifies cleanly. This is
	// the attack the fully-protected version table exists to rule out.
	if _, err := mem.ReadBlock(addr, 7); err != nil {
		t.Fatalf("coordinated rollback unexpectedly detected: %v", err)
	}
}

// TestInjectorReplayNeedsHistory verifies the harness refuses to fake a
// replay when the victim was never overwritten — there is no stale bus
// capture to play back, and silently passing would make the campaign lie.
func TestInjectorReplayNeedsHistory(t *testing.T) {
	encKey, macKey := TestKeys()
	mem, err := NewMemory(memprot.TreeLess, 1<<16, encKey, macKey)
	if err != nil {
		t.Fatal(err)
	}
	const addr = 0x40
	inj := NewInjector(mem, Plan{Kind: Replay, Victim: addr})
	if err := inj.WriteBlock(addr, blockPayload(addr, 1), 1); err != nil {
		t.Fatal(err)
	}
	inj.Arm()
	if _, err := inj.ReadBlock(addr, 1); err == nil {
		t.Fatal("replay with no stale capture must fail the harness")
	} else if errors.Is(err, secmem.ErrIntegrity) {
		t.Fatalf("harness failure must not masquerade as detection: %v", err)
	}
}

// TestExpectedMatrixShape pins the detection matrix itself.
func TestExpectedMatrixShape(t *testing.T) {
	for _, k := range Kinds() {
		for _, s := range []memprot.Scheme{memprot.Baseline, memprot.TreeLess} {
			if e := Expected(s, k); e != Detected {
				t.Errorf("Expected(%s, %s) = %s, want detected", s, k, e)
			}
		}
		for _, s := range []memprot.Scheme{memprot.Unsecure, memprot.EncryptOnly} {
			want := None
			if k == Replay || k == Splice || k == TamperData {
				want = SilentCorruption
			}
			if e := Expected(s, k); e != want {
				t.Errorf("Expected(%s, %s) = %s, want %s", s, k, e, want)
			}
		}
	}
}

// TestEnumStrings keeps report labels stable.
func TestEnumStrings(t *testing.T) {
	for _, k := range Kinds() {
		if s := k.String(); s == "" || s == "kind(?)" {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	for _, tr := range Targets() {
		if s := tr.String(); s == "" || s == "target(?)" {
			t.Errorf("target %d has no name", int(tr))
		}
	}
	for _, e := range []Effect{None, SilentCorruption, Detected} {
		if s := e.String(); s == "" || s == "effect(?)" {
			t.Errorf("effect %d has no name", int(e))
		}
	}
}

// TestReportRendering exercises the table and summary paths.
func TestReportRendering(t *testing.T) {
	prog := compileModel(t, tinyModel())
	rep, err := Campaign{Workers: 2, Kinds: []Kind{Replay, TamperMAC}}.Run("tiny", prog)
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Table()
	for _, want := range []string{"scheme", "attack", "replay", "tamper-mac", "input", "weights", "activation", "output"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	sum := rep.Summary()
	for _, s := range memprot.AllSchemes() {
		if !strings.Contains(sum, s.String()) {
			t.Errorf("summary missing %s:\n%s", s, sum)
		}
	}
}

// TestMatrixReportsViolations checks Matrix() actually fails on a
// fabricated mismatch, so a green campaign is meaningful.
func TestMatrixReportsViolations(t *testing.T) {
	rep := &Report{Model: "x", Outcomes: []Outcome{{
		Scheme: memprot.TreeLess, Target: Input, Kind: Replay,
		Expect: Detected, Got: SilentCorruption, Fired: true,
	}}}
	if err := rep.Matrix(); err == nil {
		t.Fatal("mismatched cell must fail the matrix")
	}
	rep.Outcomes[0].Got = Detected
	if err := rep.Matrix(); err != nil {
		t.Fatalf("matching cell must pass: %v", err)
	}
	rep.Outcomes[0].Err = "boom"
	if err := rep.Matrix(); err == nil {
		t.Fatal("harness error must fail the matrix")
	}
}

// TestSelectVictimsMissingClass ensures a workload without a requested
// traffic class is rejected instead of silently dropping cells.
func TestSelectVictimsMissingClass(t *testing.T) {
	m := &model.Model{
		Name: "OneLayer", Short: "one", InputBytes: 1024,
		Layers: []model.Layer{model.FC("fc", 4, 32, 16, -1)},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	prog := compileModel(t, m)
	if _, err := selectVictims(prog, []Target{Activation}); err == nil {
		t.Fatal("single-layer model has no activation reuse; selection must fail")
	}
}

func BenchmarkCampaignCellTreeless(b *testing.B) {
	m := tinyModel()
	prog, err := compiler.Compile(m, testCompilerCfg())
	if err != nil {
		b.Fatal(err)
	}
	v, err := selectVictims(prog, Targets())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := runCell(prog, memprot.TreeLess, Replay, Input, v, 5, false)
		if o.Err != "" || o.Got != Detected {
			b.Fatal(fmt.Sprintf("%+v", o))
		}
	}
}
