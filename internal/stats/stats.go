// Package stats collects simulation metrics: cycle counts, per-category
// memory traffic, and cache hit/miss counters. All simulator components
// report into a Traffic or CacheStats value owned by the run, so a finished
// simulation can be summarized without global state.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// TrafficClass labels the reason bytes crossed the memory bus.
type TrafficClass int

const (
	// Data is plaintext/ciphertext tensor payload traffic.
	Data TrafficClass = iota
	// Counter is encryption-counter line traffic (baseline scheme only).
	Counter
	// Hash is integrity-tree node traffic (baseline scheme only).
	Hash
	// MAC is per-block message-authentication-code traffic.
	MAC
	// Version is version-table traffic to the fully protected region
	// (tree-less scheme only).
	Version
	numTrafficClasses
)

// String returns the canonical lower-case name of the class.
func (c TrafficClass) String() string {
	switch c {
	case Data:
		return "data"
	case Counter:
		return "counter"
	case Hash:
		return "hash"
	case MAC:
		return "mac"
	case Version:
		return "version"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Traffic accumulates bus bytes by class and direction.
type Traffic struct {
	read  [numTrafficClasses]uint64
	write [numTrafficClasses]uint64
}

// AddRead records bytes read from DRAM for the given class.
func (t *Traffic) AddRead(c TrafficClass, bytes uint64) { t.read[c] += bytes }

// AddWrite records bytes written to DRAM for the given class.
func (t *Traffic) AddWrite(c TrafficClass, bytes uint64) { t.write[c] += bytes }

// Read returns total bytes read for the class.
func (t *Traffic) Read(c TrafficClass) uint64 { return t.read[c] }

// Write returns total bytes written for the class.
func (t *Traffic) Write(c TrafficClass) uint64 { return t.write[c] }

// Class returns read+write bytes for one class.
func (t *Traffic) Class(c TrafficClass) uint64 { return t.read[c] + t.write[c] }

// Total returns all bytes moved across every class and direction.
func (t *Traffic) Total() uint64 {
	var sum uint64
	for c := TrafficClass(0); c < numTrafficClasses; c++ {
		sum += t.read[c] + t.write[c]
	}
	return sum
}

// Metadata returns all non-Data bytes (security metadata overhead).
func (t *Traffic) Metadata() uint64 { return t.Total() - t.Class(Data) }

// Merge adds other's counts into t.
func (t *Traffic) Merge(other *Traffic) {
	for c := TrafficClass(0); c < numTrafficClasses; c++ {
		t.read[c] += other.read[c]
		t.write[c] += other.write[c]
	}
}

// Reset zeroes every counter.
func (t *Traffic) Reset() { *t = Traffic{} }

// String renders a compact single-line breakdown.
func (t *Traffic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%d", t.Total())
	for c := TrafficClass(0); c < numTrafficClasses; c++ {
		if v := t.Class(c); v > 0 {
			fmt.Fprintf(&b, " %s=%d", c, v)
		}
	}
	return b.String()
}

// CacheStats counts lookups and misses for one cache instance. Lookups
// and Misses cover demand accesses only; speculative fills are counted
// under Prefetches so that enabling a prefetcher never distorts the
// demand miss rate.
type CacheStats struct {
	Lookups    uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	Prefetches uint64
}

// MissRate returns the demand miss rate Misses/Lookups, or 0 when there
// were no lookups. Prefetch fills do not enter either term.
func (s *CacheStats) MissRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Lookups)
}

// Merge adds other's counts into s.
func (s *CacheStats) Merge(other *CacheStats) {
	s.Lookups += other.Lookups
	s.Misses += other.Misses
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
	s.Prefetches += other.Prefetches
}

// DetectionStats aggregates the outcome of an adversarial fault-injection
// campaign against one protection scheme: how many faults were injected,
// how many surfaced as integrity violations (Detected), how many silently
// corrupted consumed data (Silent — the unsecure failure mode), and how
// many had no observable effect because the scheme has no such metadata
// surface (Inert, e.g. a MAC flip against unprotected memory).
type DetectionStats struct {
	Injections uint64
	Detected   uint64
	Silent     uint64
	Inert      uint64
}

// Coverage returns Detected/Injections, or 0 when nothing was injected.
func (d *DetectionStats) Coverage() float64 {
	if d.Injections == 0 {
		return 0
	}
	return float64(d.Detected) / float64(d.Injections)
}

// Merge adds other's counts into d.
func (d *DetectionStats) Merge(other *DetectionStats) {
	d.Injections += other.Injections
	d.Detected += other.Detected
	d.Silent += other.Silent
	d.Inert += other.Inert
}

// String renders a compact single-line summary.
func (d *DetectionStats) String() string {
	return fmt.Sprintf("injected=%d detected=%d silent=%d inert=%d coverage=%s",
		d.Injections, d.Detected, d.Silent, d.Inert, Pct(d.Coverage()))
}

// GeoMean returns the geometric mean of xs. It panics on non-positive
// inputs because normalized execution times are always positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table is a minimal fixed-width text table builder used by the experiment
// harness to print paper-style rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Sort orders rows by the given column.
func (t *Table) Sort(col int) {
	sort.SliceStable(t.rows, func(i, j int) bool { return t.rows[i][col] < t.rows[j][col] })
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with 3 decimal places for table cells.
func F(x float64) string { return fmt.Sprintf("%.3f", x) }

// Pct formats a ratio as a percentage with one decimal place.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
