package stats

import "tnpu/internal/canon"

// AppendAccum appends every traffic counter to dst (accumulator canon; see
// DESIGN.md §6e). Counters are monotone, so a memoized layer's contribution
// is the wrapping difference between two AppendAccum snapshots.
func (t *Traffic) AppendAccum(dst []byte) []byte {
	for c := TrafficClass(0); c < numTrafficClasses; c++ {
		dst = canon.AppendU64(dst, t.read[c])
		dst = canon.AppendU64(dst, t.write[c])
	}
	return dst
}

// AddAccum adds a delta blob produced by subtracting two AppendAccum
// snapshots into t and returns the remaining bytes.
func (t *Traffic) AddAccum(src []byte) []byte {
	var v uint64
	for c := TrafficClass(0); c < numTrafficClasses; c++ {
		v, src = canon.U64(src)
		t.read[c] += v
		v, src = canon.U64(src)
		t.write[c] += v
	}
	return src
}

// AppendAccum appends the five cache counters to dst.
func (s *CacheStats) AppendAccum(dst []byte) []byte {
	dst = canon.AppendU64(dst, s.Lookups)
	dst = canon.AppendU64(dst, s.Misses)
	dst = canon.AppendU64(dst, s.Evictions)
	dst = canon.AppendU64(dst, s.Writebacks)
	return canon.AppendU64(dst, s.Prefetches)
}

// AddAccum adds a cache-counter delta blob into s and returns the
// remaining bytes.
func (s *CacheStats) AddAccum(src []byte) []byte {
	var v uint64
	v, src = canon.U64(src)
	s.Lookups += v
	v, src = canon.U64(src)
	s.Misses += v
	v, src = canon.U64(src)
	s.Evictions += v
	v, src = canon.U64(src)
	s.Writebacks += v
	v, src = canon.U64(src)
	s.Prefetches += v
	return src
}
