package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTrafficAccumulation(t *testing.T) {
	var tr Traffic
	tr.AddRead(Data, 64)
	tr.AddRead(Data, 64)
	tr.AddWrite(Data, 128)
	tr.AddRead(MAC, 8)
	tr.AddWrite(Counter, 64)

	if got := tr.Read(Data); got != 128 {
		t.Errorf("Read(Data) = %d, want 128", got)
	}
	if got := tr.Write(Data); got != 128 {
		t.Errorf("Write(Data) = %d, want 128", got)
	}
	if got := tr.Class(Data); got != 256 {
		t.Errorf("Class(Data) = %d, want 256", got)
	}
	if got := tr.Total(); got != 256+8+64 {
		t.Errorf("Total = %d, want %d", got, 256+8+64)
	}
	if got := tr.Metadata(); got != 72 {
		t.Errorf("Metadata = %d, want 72", got)
	}
}

func TestTrafficMergeAndReset(t *testing.T) {
	var a, b Traffic
	a.AddRead(Data, 100)
	b.AddWrite(Hash, 50)
	b.AddRead(Version, 8)
	a.Merge(&b)
	if a.Total() != 158 {
		t.Fatalf("merged total = %d, want 158", a.Total())
	}
	a.Reset()
	if a.Total() != 0 {
		t.Fatalf("total after reset = %d, want 0", a.Total())
	}
}

func TestTrafficClassString(t *testing.T) {
	want := map[TrafficClass]string{
		Data: "data", Counter: "counter", Hash: "hash", MAC: "mac", Version: "version",
	}
	// Each iteration asserts independently; order never reaches output.
	for c, s := range want { //tnpu:orderfree
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if got := TrafficClass(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown class string = %q", got)
	}
}

func TestCacheStatsMissRate(t *testing.T) {
	var s CacheStats
	if s.MissRate() != 0 {
		t.Fatal("empty stats should have miss rate 0")
	}
	s.Lookups = 10
	s.Misses = 3
	if got := s.MissRate(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("MissRate = %v, want 0.3", got)
	}
	var other CacheStats
	other.Lookups = 10
	other.Misses = 7
	s.Merge(&other)
	if got := s.MissRate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("merged MissRate = %v, want 0.5", got)
	}
}

func TestGeoMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{2}, 2},
		{[]float64{1, 4}, 2},
		{[]float64{2, 2, 2}, 2},
	}
	for _, c := range cases {
		if got := GeoMean(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("GeoMean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive input")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

// Property: merging two traffic tallies equals summing their totals.
func TestTrafficMergeProperty(t *testing.T) {
	f := func(r1, w1, r2, w2 uint32) bool {
		var a, b Traffic
		a.AddRead(Data, uint64(r1))
		a.AddWrite(MAC, uint64(w1))
		b.AddRead(Counter, uint64(r2))
		b.AddWrite(Hash, uint64(w2))
		want := a.Total() + b.Total()
		a.Merge(&b)
		return a.Total() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GeoMean of positive values lies between min and max.
func TestGeoMeanBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r) + 1 // ensure positive
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("model", "value")
	tb.AddRow("res", F(1.234567))
	tb.AddRow("goo") // short row padded
	out := tb.String()
	if !strings.Contains(out, "model") || !strings.Contains(out, "1.235") {
		t.Errorf("unexpected table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestTableSort(t *testing.T) {
	tb := NewTable("k")
	tb.AddRow("b")
	tb.AddRow("a")
	tb.Sort(0)
	out := tb.String()
	if strings.Index(out, "a") > strings.Index(out, "b") {
		t.Errorf("sort did not order rows:\n%s", out)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.211); got != "21.1%" {
		t.Errorf("Pct = %q, want 21.1%%", got)
	}
}

func TestTrafficString(t *testing.T) {
	var tr Traffic
	tr.AddRead(Data, 64)
	tr.AddWrite(MAC, 8)
	s := tr.String()
	if !strings.Contains(s, "data=64") || !strings.Contains(s, "mac=8") {
		t.Errorf("Traffic.String() = %q", s)
	}
}

func TestDetectionStatsCoverage(t *testing.T) {
	var d DetectionStats
	if d.Coverage() != 0 {
		t.Errorf("empty coverage = %v, want 0", d.Coverage())
	}
	d = DetectionStats{Injections: 24, Detected: 24}
	if d.Coverage() != 1 {
		t.Errorf("full coverage = %v, want 1", d.Coverage())
	}
	d = DetectionStats{Injections: 24, Detected: 12, Silent: 6, Inert: 6}
	if d.Coverage() != 0.5 {
		t.Errorf("half coverage = %v, want 0.5", d.Coverage())
	}
}

func TestDetectionStatsMerge(t *testing.T) {
	a := DetectionStats{Injections: 10, Detected: 10}
	b := DetectionStats{Injections: 6, Detected: 2, Silent: 3, Inert: 1}
	a.Merge(&b)
	want := DetectionStats{Injections: 16, Detected: 12, Silent: 3, Inert: 1}
	if a != want {
		t.Errorf("merged = %+v, want %+v", a, want)
	}
}

func TestDetectionStatsString(t *testing.T) {
	d := DetectionStats{Injections: 24, Detected: 24}
	s := d.String()
	for _, part := range []string{"injected=24", "detected=24", "silent=0", "inert=0", "coverage=100.0%"} {
		if !strings.Contains(s, part) {
			t.Errorf("String() = %q, missing %q", s, part)
		}
	}
}
